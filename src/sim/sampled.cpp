#include "sim/sampled.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/archive.hpp"
#include "common/check.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "core/sched_types.hpp"
#include "obs/region.hpp"
#include "robust/diagnostic.hpp"
#include "robust/fault.hpp"
#include "robust/invariant.hpp"
#include "smt/pipeline.hpp"
#include "trace/profile.hpp"

namespace msim::sim {

namespace {

std::string hex_u64(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(v >> shift) & 0xf];
  }
  return out;
}

/// Archive payload of the whole pipeline, held in memory: the region
/// checkpoint set never touches the filesystem.
std::vector<std::uint8_t> snapshot(const smt::Pipeline& pipe) {
  persist::Archive ar = persist::Archive::saver();
  pipe.save_state(ar);
  return ar.bytes();
}

/// Measurements harvested from one detailed region replay.
struct RegionMeasure {
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::vector<std::uint64_t> per_thread_committed;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t digest = 0;
  std::uint64_t total_with_warmup = 0;  ///< committed incl. detail warm-up
  std::vector<obs::IntervalRecord> intervals;
  std::uint64_t intervals_dropped = 0;
};

/// Replays one selected region in detail: fresh pipeline, restore the
/// functional checkpoint at (region start - detail warm-up), run the
/// warm-up in cycle-level mode, reset statistics, and measure the region.
/// Failures surface as SimulationAborted naming the region, with a
/// diagnostic bundle of the region pipeline -- never a silent estimate.
RegionMeasure measure_region(const RunConfig& base, smt::MachineConfig mc,
                             const std::vector<trace::BenchmarkProfile>& profiles,
                             const core::FaultHooks* fault_session,
                             const std::vector<std::uint8_t>& checkpoint,
                             std::uint64_t region_index,
                             std::uint64_t region_start, std::uint64_t region_end) {
  mc.fault_hooks = fault_session;
  smt::Pipeline pipe(mc, profiles, base.seed);
  robust::InvariantChecker checker;
  if (base.verify) pipe.set_observer(&checker);

  {
    persist::Archive ar = persist::Archive::loader(checkpoint);
    pipe.load_state(ar);
    ar.expect_end();
  }
  const std::uint64_t restored = pipe.total_committed();

  const auto abort_with = [&](const std::string& what) -> RegionMeasure {
    const std::string reason =
        "sampled region " + std::to_string(region_index) + ": " + what;
    throw robust::SimulationAborted(reason,
                                    robust::diagnostic_bundle(pipe, reason));
  };
  try {
    // Detail warm-up: from the checkpoint's instruction offset up to the
    // region start, draining the cold (empty) pipeline.
    if (region_start > 0) pipe.run(region_start);
    const std::uint64_t warm_committed = pipe.total_committed() - restored;
    pipe.reset_stats();
    pipe.run(region_end - region_start);

    RegionMeasure m;
    m.cycles = pipe.cycles();
    m.committed = pipe.total_committed();
    for (ThreadId t = 0; t < pipe.thread_count(); ++t) {
      m.per_thread_committed.push_back(pipe.committed(t));
    }
    const mem::HierarchyStats ms = pipe.memory().stats();
    m.l1d_misses = ms.l1d.misses;
    m.l2_misses = ms.l2.misses;
    const bpred::PredictorStats bs = pipe.predictor().total_stats();
    m.branches = bs.branches;
    m.mispredicts = bs.mispredicts;
    m.digest = pipe.commit_digest();
    m.total_with_warmup = warm_committed + m.committed;
    if (pipe.interval_engine().enabled()) {
      const auto& ring = pipe.interval_engine().records();
      m.intervals.assign(ring.begin(), ring.end());
      for (obs::IntervalRecord& r : m.intervals) {
        r.region_id = static_cast<std::int64_t>(region_index);
      }
      m.intervals_dropped = pipe.interval_engine().dropped();
    }
    return m;
  } catch (const smt::NoForwardProgress& e) {
    return abort_with(std::string("hang watchdog: ") + e.what());
  } catch (const CheckError& e) {
    return abort_with(e.what());
  }
}

}  // namespace

void SampledConfig::validate(const RunConfig& base) const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("sampled: " + what);
  };
  base.validate();
  if (region_length == 0) fail("region_length must be >= 1");
  if (!base.checkpoint_path.empty() || !base.resume_path.empty() ||
      base.checkpoint_every != 0 || base.checkpoint_exit_cycles != 0) {
    fail("checkpoint/resume knobs do not compose with mode=sampled (region "
         "checkpoints are internal and in-memory)");
  }
  if (base.max_cycles != 0) {
    fail("max_cycles truncation is undefined under sampling; bound the run "
         "with horizon instead");
  }
  if (base.trace_capacity != 0) {
    fail("lifecycle tracing of a sampled run would interleave disjoint "
         "regions; trace an exact run instead");
  }
}

SampledResult run_sampled(const RunConfig& base, const SampledConfig& sampled) {
  sampled.validate(base);
  std::vector<trace::BenchmarkProfile> profiles;
  profiles.reserve(base.benchmarks.size());
  for (const std::string& name : base.benchmarks) {
    profiles.push_back(trace::profile_or_throw(name));
  }
  smt::MachineConfig mc = base.machine();

  const std::uint64_t L = sampled.region_length;
  const std::uint64_t D = sampled.detail_warmup;
  // All positions below are on the *leading-thread* axis: the warm-up /
  // horizon stop rule is any-thread, so the fastest thread's instruction
  // count is the run's clock.
  const std::uint64_t span = base.warmup + base.horizon;
  const std::uint64_t region_count = (span + L - 1) / L;
  const unsigned threads = static_cast<unsigned>(profiles.size());

  // ---- pilot: per-thread commit-rate estimate -----------------------------
  // A short detailed run from cold start measures how fast each thread
  // commits relative to the leader.  The functional pass then advances
  // thread t to position pace_base[t] + (p - pace_from) * rate[t] / rate_den
  // when the leader is at p, mirroring the thread skew an exact run
  // accumulates (integer ratios: deterministic, monotone, overflow-safe at
  // these magnitudes).  Because relative rates drift over a long run (the
  // skew ratio keeps evolving as the shared caches and IQ occupancy settle),
  // the pacing is piecewise: periodically (every 250k leader instructions,
  // stretched to span/12 on very long runs so the probe cost stays a fixed
  // small fraction of the pass) a
  // short detailed probe re-measures local rates from the checkpoint the
  // pass just took, starting a new pacing segment from the current targets
  // (so paced positions stay continuous and monotone).
  std::vector<std::uint64_t> rate(threads, 1);
  std::uint64_t rate_den = 1;
  std::vector<std::uint64_t> pace_base(threads, 0);
  std::uint64_t pace_from = 0;
  const auto paced = [&](std::uint64_t p) {
    std::vector<std::uint64_t> targets(threads);
    for (unsigned t = 0; t < threads; ++t) {
      targets[t] = pace_base[t] + (p - pace_from) * rate[t] / rate_den;
    }
    return targets;
  };
  // Updates rate/rate_den from a detailed run of `pipe` until its leading
  // thread has advanced `sampled.pilot` instructions past `from`.
  const auto measure_rates = [&](smt::Pipeline& pilot, std::uint64_t from) {
    std::vector<std::uint64_t> before(threads);
    for (ThreadId t = 0; t < threads; ++t) before[t] = pilot.committed(t);
    pilot.run(from + sampled.pilot);
    std::uint64_t fastest = 0;
    for (ThreadId t = 0; t < threads; ++t) {
      fastest = std::max(fastest, pilot.committed(t) - before[t]);
    }
    rate_den = std::max<std::uint64_t>(fastest, 1);
    for (ThreadId t = 0; t < threads; ++t) {
      rate[t] = std::max<std::uint64_t>(pilot.committed(t) - before[t], 1);
    }
  };
  if (sampled.pilot != 0 && threads > 1) {
    smt::Pipeline pilot(mc, profiles, base.seed);
    const std::uint64_t shed = sampled.pilot / 4 + 1;
    pilot.run(shed);  // shed the cold-start transient
    measure_rates(pilot, shed);
  }

  // ---- functional profile pass --------------------------------------------
  // One streaming pass over the whole run: region feature profiles for the
  // selector plus an in-memory checkpoint at every region's detailed-sim
  // entry point (region start minus detail warm-up).  Execution is cut at
  // each event boundary so profile deltas align exactly with regions.
  struct Event {
    std::uint64_t at = 0;
    bool is_checkpoint = false;
    std::uint64_t region = 0;
  };
  std::vector<Event> events;
  events.reserve(2 * region_count);
  for (std::uint64_t r = 0; r < region_count; ++r) {
    const std::uint64_t start = r * L;
    events.push_back({start >= D ? start - D : 0, true, r});
    events.push_back({std::min(start + L, span), false, r});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.is_checkpoint != b.is_checkpoint) return a.is_checkpoint;
    return a.region < b.region;
  });

  // One pool serves both the functional pass (producer tasks) and the
  // detailed region sims.  Results are bit-identical with or without it.
  const unsigned jobs =
      sampled.jobs != 0 ? sampled.jobs : ThreadPool::default_parallelism();
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);

  smt::Pipeline func(mc, profiles, base.seed);
  std::vector<obs::RegionProfile> profs(region_count);
  for (std::uint64_t r = 0; r < region_count; ++r) {
    profs[r].index = r;
    profs[r].threads.resize(threads);
    const std::uint64_t start = r * L;
    const std::uint64_t end = std::min(start + L, span);
    const std::uint64_t measured_from = std::max(start, base.warmup);
    profs[r].weight = end > measured_from ? end - measured_from : 0;
  }
  std::vector<std::vector<std::uint8_t>> checkpoints(region_count);
  // Pacing-segment cadence: frequent enough to track commit-rate drift, rare
  // enough that the probes stay a small fraction of the pass (one ~10ms
  // probe per ~80ms of functional execution at 4 threads).
  const std::uint64_t recalibrate_every =
      std::max<std::uint64_t>(250'000, span / 12);
  std::uint64_t next_recalibrate = recalibrate_every;
  std::uint64_t functional_instructions = 0;
  std::uint64_t pos = 0;
  mem::HierarchyStats mem_prev = func.memory().stats();
  for (const Event& ev : events) {
    if (ev.at > pos) {
      obs::RegionProfile& p = profs[pos / L];
      // Advance each thread from its paced position at `pos` to its paced
      // position at `ev.at` (the leader advances by the full gap).
      const std::vector<std::uint64_t> from = paced(pos);
      const std::vector<std::uint64_t> to = paced(ev.at);
      std::vector<std::uint64_t> step(threads);
      for (unsigned t = 0; t < threads; ++t) step[t] = to[t] - from[t];
      const auto deltas = func.run_functional(step, pool.get());
      for (unsigned t = 0; t < threads; ++t) {
        obs::RegionThreadProfile& tp = p.threads[t];
        tp.instructions += deltas[t].instructions;
        tp.branches += deltas[t].branches;
        tp.mispredicts += deltas[t].mispredicts;
        tp.loads += deltas[t].loads;
        tp.stores += deltas[t].stores;
        functional_instructions += deltas[t].instructions;
      }
      const mem::HierarchyStats now = func.memory().stats();
      p.l1i_misses += now.l1i.misses - mem_prev.l1i.misses;
      p.l1d_misses += now.l1d.misses - mem_prev.l1d.misses;
      p.l2_misses += now.l2.misses - mem_prev.l2.misses;
      mem_prev = now;
      pos = ev.at;
    }
    if (ev.is_checkpoint && checkpoints[ev.region].empty()) {
      checkpoints[ev.region] = snapshot(func);
      if (sampled.pilot != 0 && threads > 1 && ev.at >= next_recalibrate) {
        next_recalibrate = ev.at + recalibrate_every;
        // Local-rate probe: a detailed pipeline restored from the checkpoint
        // just taken.  A quarter-pilot lead-in drains the cold (empty)
        // pipeline before rates are measured, as in the initial pilot.
        smt::Pipeline probe(mc, profiles, base.seed);
        {
          persist::Archive ar = persist::Archive::loader(checkpoints[ev.region]);
          probe.load_state(ar);
          ar.expect_end();
        }
        const std::uint64_t shed = ev.at + sampled.pilot / 4 + 1;
        probe.run(shed);
        pace_base = paced(ev.at);
        pace_from = ev.at;
        measure_rates(probe, shed);
      }
    }
  }

  // ---- cluster and select representatives ---------------------------------
  SampledResult out;
  out.regions_total = region_count;
  out.functional_instructions = functional_instructions;
  out.regions.resize(region_count);
  obs::RegionClusters clusters(
      obs::RegionClusters::Tolerance::for_region_count(region_count));
  for (std::uint64_t r = 0; r < region_count; ++r) {
    SampledRegion& sr = out.regions[r];
    sr.index = r;
    sr.weight = profs[r].weight;
    sr.fingerprint = obs::region_fingerprint(profs[r]);
    sr.cluster = clusters.assign(profs[r]);
  }
  out.clusters = clusters.size();
  // Representative per cluster: the medoid over fully-measured members
  // (weight == region length), so a first-seen leader sitting at the edge
  // of the tolerance band is not mistaken for typical.  Partially-measured
  // members (straddling the warm-up boundary or the final ragged region)
  // stay eligible only if no full member exists.  Clusters wholly inside
  // the warm-up window have weight 0 and are never simulated -- their
  // state contribution already flowed through the functional pass into
  // every later checkpoint.
  std::vector<std::uint64_t> cluster_weight(clusters.size(), 0);
  std::vector<std::vector<std::uint64_t>> full_members(clusters.size());
  std::vector<std::vector<std::uint64_t>> partial_members(clusters.size());
  for (std::uint64_t r = 0; r < region_count; ++r) {
    const SampledRegion& sr = out.regions[r];
    cluster_weight[sr.cluster] += sr.weight;
    if (sr.weight == L) {
      full_members[sr.cluster].push_back(r);
    } else if (sr.weight > 0) {
      partial_members[sr.cluster].push_back(r);
    }
  }
  std::vector<std::uint64_t> selected;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (cluster_weight[c] == 0) continue;
    const std::vector<std::uint64_t>& candidates =
        full_members[c].empty() ? partial_members[c] : full_members[c];
    SampledRegion& rep = out.regions[clusters.medoid(c, candidates)];
    rep.detailed = true;
    rep.cluster_weight = cluster_weight[c];
    selected.push_back(rep.index);
  }
  std::sort(selected.begin(), selected.end());
  out.regions_detailed = selected.size();

  // ---- detailed region sims (parallel, deterministically aggregated) ------
  // One fault session per region pipeline, created serially up front; the
  // plan decides per stream whether it applies, exactly as in exact mode.
  std::vector<std::unique_ptr<core::FaultHooks>> sessions(selected.size());
  if (base.faults) {
    for (auto& s : sessions) s = base.faults->session(base.seed);
  }
  std::vector<RegionMeasure> measures(selected.size());
  std::vector<std::exception_ptr> errors(selected.size());
  const auto task = [&](std::size_t i) {
    const std::uint64_t r = selected[i];
    try {
      measures[i] = measure_region(base, mc, profiles, sessions[i].get(),
                                   checkpoints[r], r, r * L,
                                   std::min(r * L + L, span));
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };
  if (pool == nullptr || selected.size() <= 1) {
    for (std::size_t i = 0; i < selected.size(); ++i) task(i);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      futures.push_back(pool->submit([&task, i] { task(i); }));
    }
    for (auto& f : futures) f.get();
  }
  // Surface the first failure in region order (job-count independent).
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // ---- reconstitute whole-run estimates -----------------------------------
  double est_cycles = 0.0;
  double est_committed = 0.0;
  std::vector<double> est_thread_committed(threads, 0.0);
  double sum_w = 0.0, sum_w2 = 0.0, sum_w_ipc = 0.0;
  // Per-cluster calibration: the detailed representative's event counts over
  // its functional profile's counts for the same region.  See below.
  struct Calibration {
    double insts = 1.0;
    double l1d = 1.0;
    double l2 = 1.0;
    double branches = 1.0;
    double mispredicts = 1.0;
  };
  std::vector<Calibration> cal(out.clusters);
  const auto ratio = [](std::uint64_t detailed, std::uint64_t functional) {
    return functional > 0 ? static_cast<double>(detailed) /
                                static_cast<double>(functional)
                          : 1.0;
  };
  out.sampled_digest = 0xcbf29ce484222325ULL;
  const auto mix_digest = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.sampled_digest ^= (v >> (8 * i)) & 0xff;
      out.sampled_digest *= 0x100000001b3ULL;
    }
  };
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::uint64_t r = selected[i];
    SampledRegion& sr = out.regions[r];
    const RegionMeasure& m = measures[i];
    sr.cycles = m.cycles;
    sr.committed = m.committed;
    sr.per_thread_committed = m.per_thread_committed;
    sr.l1d_misses = m.l1d_misses;
    sr.l2_misses = m.l2_misses;
    sr.branches = m.branches;
    sr.mispredicts = m.mispredicts;
    sr.digest = m.digest;
    out.detailed_committed += m.total_with_warmup;
    out.intervals.insert(out.intervals.end(), m.intervals.begin(),
                         m.intervals.end());
    out.intervals_dropped += m.intervals_dropped;
    mix_digest(r);
    mix_digest(m.digest);

    const std::uint64_t len = std::min(r * L + L, span) - r * L;
    // Replication factor: how many measured per-thread instructions this
    // representative stands for, per instruction it actually measured.
    const double scale =
        static_cast<double>(sr.cluster_weight) / static_cast<double>(len);
    est_cycles += scale * static_cast<double>(m.cycles);
    est_committed += scale * static_cast<double>(m.committed);
    for (unsigned t = 0; t < threads; ++t) {
      est_thread_committed[t] +=
          scale * static_cast<double>(m.per_thread_committed[t]);
    }

    {
      const obs::RegionProfile& p = profs[r];
      std::uint64_t func_branches = 0, func_mispredicts = 0;
      for (const obs::RegionThreadProfile& t : p.threads) {
        func_branches += t.branches;
        func_mispredicts += t.mispredicts;
      }
      Calibration& c = cal[sr.cluster];
      c.insts = ratio(m.committed, p.total_instructions());
      c.l1d = ratio(m.l1d_misses, p.l1d_misses);
      c.l2 = ratio(m.l2_misses, p.l2_misses);
      c.branches = ratio(m.branches, func_branches);
      c.mispredicts = ratio(m.mispredicts, func_mispredicts);
    }

    const double w = static_cast<double>(sr.cluster_weight);
    const double region_ipc =
        m.cycles ? static_cast<double>(m.committed) / static_cast<double>(m.cycles)
                 : 0.0;
    sum_w += w;
    sum_w2 += w * w;
    sum_w_ipc += w * region_ipc;
  }
  if (est_cycles > 0.0) {
    out.est_ipc = est_committed / est_cycles;
    for (unsigned t = 0; t < threads; ++t) {
      out.per_thread_ipc.push_back(est_thread_committed[t] / est_cycles);
    }
  } else {
    out.per_thread_ipc.assign(threads, 0.0);
  }
  // Memory-system and predictor rates come from the functional pass,
  // calibrated per cluster by the detailed representatives.  The functional
  // pass maintains full-fidelity cache and predictor state over the *whole*
  // span, so its per-region miss counters track slow drift (e.g. the L2
  // filling over millions of instructions) that a handful of
  // representatives cannot -- a few tolerance-banded clusters chop a
  // drifting miss-rate curve into steps and systematically mis-weight it.
  // But the functional pass only replays the commit path: it never issues
  // the speculative and wrong-path accesses a detailed pipeline does, so
  // its raw counts run systematically low.  Each representative measures
  // that gap for its cluster (detailed count over functional count on the
  // same region), and the gap scales every member's functional counts:
  // the pass supplies the drift *shape*, the representatives the fidelity
  // *scale*, and cycles/IPC still come only from detailed measurement.
  double f_insts = 0.0, f_l1d = 0.0, f_l2 = 0.0;
  double f_branches = 0.0, f_mispredicts = 0.0;
  for (std::uint64_t r = 0; r < region_count; ++r) {
    const obs::RegionProfile& p = profs[r];
    if (p.weight == 0) continue;
    const Calibration& c = cal[out.regions[r].cluster];
    const std::uint64_t len = std::min(r * L + L, span) - r * L;
    const double frac =
        static_cast<double>(p.weight) / static_cast<double>(len);
    f_insts += frac * c.insts * static_cast<double>(p.total_instructions());
    f_l1d += frac * c.l1d * static_cast<double>(p.l1d_misses);
    f_l2 += frac * c.l2 * static_cast<double>(p.l2_misses);
    for (const obs::RegionThreadProfile& t : p.threads) {
      f_branches += frac * c.branches * static_cast<double>(t.branches);
      f_mispredicts += frac * c.mispredicts * static_cast<double>(t.mispredicts);
    }
  }
  if (f_insts > 0.0) {
    out.est_l1d_mpki = 1000.0 * f_l1d / f_insts;
    out.est_l2_mpki = 1000.0 * f_l2 / f_insts;
  }
  if (f_branches > 0.0) out.est_mispredict_rate = f_mispredicts / f_branches;
  if (sum_w > 0.0) {
    const double mean = sum_w_ipc / sum_w;
    double var = 0.0;
    for (const std::uint64_t r : selected) {
      const SampledRegion& sr = out.regions[r];
      const double region_ipc =
          sr.cycles ? static_cast<double>(sr.committed) /
                          static_cast<double>(sr.cycles)
                    : 0.0;
      var += static_cast<double>(sr.cluster_weight) * (region_ipc - mean) *
             (region_ipc - mean);
    }
    var /= sum_w;
    const double n_eff = sum_w2 > 0.0 ? (sum_w * sum_w) / sum_w2 : 1.0;
    out.ipc_ci95 = 1.96 * std::sqrt(var / n_eff);
  }
  // Committed instructions an exact run of the same span would simulate:
  // the instruction stream the functional pass actually carried, end to
  // end (warm-up included).  The pass paces every thread by detailed-probe
  // commit rates, so its per-thread instruction counts mirror the skew an
  // exact any-thread-stop run accumulates -- this is a measured workload
  // size, not an extrapolated estimate.
  out.exact_equivalent_instructions = functional_instructions;
  return out;
}

void write_sampled_json(std::ostream& os, const RunConfig& base,
                        const SampledConfig& sampled, const SampledResult& result,
                        int indent) {
  JsonWriter w(os, indent);
  w.begin_object();
  w.kv("schema", "msim.sampled.v1");
  w.key("config");
  w.begin_object();
  w.key("benchmarks");
  w.begin_array();
  for (const std::string& b : base.benchmarks) w.value(b);
  w.end_array();
  w.kv("scheduler", core::scheduler_kind_name(base.kind));
  w.kv("iq_entries", base.iq_entries);
  w.kv("seed", base.seed);
  w.kv("warmup", base.warmup);
  w.kv("horizon", base.horizon);
  w.kv("region_length", sampled.region_length);
  w.kv("detail_warmup", sampled.detail_warmup);
  w.kv("pilot", sampled.pilot);
  w.kv("interval", base.interval_cycles);
  w.kv("verify", base.verify);
  w.kv("fault_injection", base.faults != nullptr);
  w.end_object();

  w.kv("regions_total", result.regions_total);
  w.kv("regions_detailed", result.regions_detailed);
  w.kv("clusters", result.clusters);
  w.kv("functional_instructions", result.functional_instructions);
  w.kv("detailed_committed", result.detailed_committed);
  w.kv("exact_equivalent_instructions", result.exact_equivalent_instructions);
  w.kv("sampled_digest", hex_u64(result.sampled_digest));

  w.key("estimates");
  w.begin_object();
  w.kv("ipc", result.est_ipc);
  w.kv("ipc_ci95", result.ipc_ci95);
  w.kv("l1d_mpki", result.est_l1d_mpki);
  w.kv("l2_mpki", result.est_l2_mpki);
  w.kv("mispredict_rate", result.est_mispredict_rate);
  w.key("per_thread_ipc");
  w.begin_array();
  for (const double v : result.per_thread_ipc) w.value(v);
  w.end_array();
  w.end_object();

  w.key("regions");
  w.begin_array();
  for (const SampledRegion& r : result.regions) {
    w.begin_object();
    w.kv("index", r.index);
    w.kv("fingerprint", hex_u64(r.fingerprint));
    w.kv("cluster", static_cast<std::uint64_t>(r.cluster));
    w.kv("weight", r.weight);
    w.kv("detailed", r.detailed);
    if (r.detailed) {
      w.kv("cluster_weight", r.cluster_weight);
      w.kv("cycles", r.cycles);
      w.kv("committed", r.committed);
      w.kv("ipc", r.cycles ? static_cast<double>(r.committed) /
                                 static_cast<double>(r.cycles)
                           : 0.0);
      w.kv("l1d_misses", r.l1d_misses);
      w.kv("l2_misses", r.l2_misses);
      w.kv("digest", hex_u64(r.digest));
    }
    w.end_object();
  }
  w.end_array();
  if (!result.intervals.empty() || result.intervals_dropped != 0) {
    w.kv("interval_records", static_cast<std::uint64_t>(result.intervals.size()));
    w.kv("intervals_dropped", result.intervals_dropped);
  }
  w.end_object();
  os << '\n';
}

}  // namespace msim::sim
