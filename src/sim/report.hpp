// Table builders that render sweep results in the shape of the paper's
// figures (speedup-vs-IQ-size series per scheduler kind).
#pragma once

#include <ostream>
#include <span>
#include <string_view>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"

namespace msim::sim {

/// Which aggregate a figure plots.
enum class FigureMetric {
  kIpcSpeedup,       ///< Figures 1, 3, 5, 7
  kFairnessGain,     ///< Figures 4, 6, 8
  kThroughputIpc,    ///< raw harmonic-mean IPC
  kAllStallFraction, ///< Section-3 dispatch stall statistic
  kIqResidency,      ///< mean cycles between dispatch and issue
};

[[nodiscard]] double metric_value(const SweepCell& cell, FigureMetric metric);

/// Rows = IQ sizes, one column per scheduler kind.  Speedup metrics are
/// rendered as signed percentages relative to the traditional scheduler of
/// the same capacity (exactly how the paper's figures are labelled).
[[nodiscard]] TextTable figure_table(const std::vector<SweepCell>& cells,
                                     std::span<const core::SchedulerKind> kinds,
                                     std::span<const std::uint32_t> iq_sizes,
                                     FigureMetric metric);

/// Per-mix drill-down for one (kind, IQ) cell: one row per workload mix.
[[nodiscard]] TextTable mix_table(const SweepCell& cell);

/// Stable machine-readable name of a figure metric ("ipc_speedup", ...).
[[nodiscard]] std::string_view figure_metric_name(FigureMetric metric) noexcept;

/// One run as a JSON document: the resolved configuration, headline results
/// and the full metric-registry snapshot.
void write_run_json(std::ostream& os, const RunConfig& config,
                    const RunResult& result, int indent = 2);

/// A sweep grid as a JSON document: one record per (kind, IQ) cell with its
/// aggregates and a per-mix drill-down — the machine-readable counterpart of
/// figure_table + mix_table.
void write_sweep_json(std::ostream& os, const std::vector<SweepCell>& cells,
                      int indent = 2);

}  // namespace msim::sim
