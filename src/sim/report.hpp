// Table builders that render sweep results in the shape of the paper's
// figures (speedup-vs-IQ-size series per scheduler kind).
#pragma once

#include <span>
#include <vector>

#include "common/table.hpp"
#include "sim/experiment.hpp"

namespace msim::sim {

/// Which aggregate a figure plots.
enum class FigureMetric {
  kIpcSpeedup,       ///< Figures 1, 3, 5, 7
  kFairnessGain,     ///< Figures 4, 6, 8
  kThroughputIpc,    ///< raw harmonic-mean IPC
  kAllStallFraction, ///< Section-3 dispatch stall statistic
  kIqResidency,      ///< mean cycles between dispatch and issue
};

[[nodiscard]] double metric_value(const SweepCell& cell, FigureMetric metric);

/// Rows = IQ sizes, one column per scheduler kind.  Speedup metrics are
/// rendered as signed percentages relative to the traditional scheduler of
/// the same capacity (exactly how the paper's figures are labelled).
[[nodiscard]] TextTable figure_table(const std::vector<SweepCell>& cells,
                                     std::span<const core::SchedulerKind> kinds,
                                     std::span<const std::uint32_t> iq_sizes,
                                     FigureMetric metric);

/// Per-mix drill-down for one (kind, IQ) cell: one row per workload mix.
[[nodiscard]] TextTable mix_table(const SweepCell& cell);

}  // namespace msim::sim
