// Experiment harness: runs workload mixes across scheduler kinds and IQ
// sizes and aggregates results the way the paper does (harmonic means across
// the 12 mixes of a thread count; speedups relative to the traditional
// scheduler of the same capacity; fairness = harmonic mean of weighted IPCs
// using cached single-threaded baseline runs).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/sched_types.hpp"
#include "sim/run.hpp"
#include "trace/mixes.hpp"

namespace msim::sim {

/// Memoizes single-threaded IPC of each benchmark on the traditional
/// scheduler of a given IQ size: the denominator of the weighted-IPC
/// fairness metric (Section 2, citing [8,16]).
class BaselineCache {
 public:
  explicit BaselineCache(RunConfig base) : base_(std::move(base)) {}

  /// IPC of `benchmark` running alone (traditional scheduler, `iq_entries`).
  double alone_ipc(std::string_view benchmark, std::uint32_t iq_entries);

  [[nodiscard]] std::size_t entries() const noexcept { return cache_.size(); }

 private:
  RunConfig base_;
  std::map<std::pair<std::string, std::uint32_t>, double> cache_;
};

/// One mix under one scheduler configuration.
struct MixResult {
  std::string mix_name;
  double throughput_ipc = 0.0;
  double fairness = 0.0;  ///< harmonic mean of per-thread weighted IPCs
  RunResult raw;
};

/// Runs one workload mix; `base` supplies everything except benchmarks,
/// kind and IQ size.
MixResult run_mix(const trace::WorkloadMix& mix, core::SchedulerKind kind,
                  std::uint32_t iq_entries, const RunConfig& base,
                  BaselineCache& baselines);

/// Aggregate of the 12 mixes for one (kind, IQ size) cell.
struct SweepCell {
  core::SchedulerKind kind = core::SchedulerKind::kTraditional;
  std::uint32_t iq_entries = 0;
  double hmean_ipc = 0.0;
  double hmean_fairness = 0.0;
  /// Harmonic mean across mixes of per-mix throughput speedup vs the
  /// traditional scheduler of the same capacity (1.0 for kTraditional).
  double ipc_speedup_vs_trad = 1.0;
  double fairness_gain_vs_trad = 1.0;
  double mean_all_stall_fraction = 0.0;  ///< Section-3 stall statistic
  double mean_iq_residency = 0.0;        ///< cycles from dispatch to issue
  std::vector<MixResult> mixes;
};

struct SweepRequest {
  unsigned thread_count = 2;  ///< selects the paper's 12 mixes of that size
  std::vector<core::SchedulerKind> kinds;
  std::vector<std::uint32_t> iq_sizes;
  RunConfig base;  ///< benchmarks/kind/iq fields are ignored
  /// Optional progress sink (benches report to stderr).
  std::function<void(std::string_view)> progress;
};

/// Runs the full cross product.  kTraditional is always run (it anchors the
/// speedups) even when absent from `request.kinds`; it is returned only if
/// requested.  Cells are ordered kind-major in request order.
std::vector<SweepCell> run_sweep(const SweepRequest& request, BaselineCache& baselines);

/// Finds the cell for (kind, iq); throws std::invalid_argument if missing.
const SweepCell& cell_for(const std::vector<SweepCell>& cells,
                          core::SchedulerKind kind, std::uint32_t iq_entries);

}  // namespace msim::sim
