// Experiment harness: runs workload mixes across scheduler kinds and IQ
// sizes and aggregates results the way the paper does (harmonic means across
// the 12 mixes of a thread count; speedups relative to the traditional
// scheduler of the same capacity; fairness = harmonic mean of weighted IPCs
// using cached single-threaded baseline runs).
//
// The sweep grid parallelizes embarrassingly: every (mix, kind, iq) cell is
// an independent simulation with its own deterministically derived RNG
// stream (common/rng.hpp, derive_stream_seed), so run_sweep can fan the
// cells out across a thread pool and still return bit-identical results at
// any job count — cells are aggregated in fixed grid order, never in
// completion order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/sched_types.hpp"
#include "obs/timer.hpp"
#include "sim/run.hpp"
#include "trace/mixes.hpp"

namespace msim::sim {

/// One completed baseline: `benchmark` alone on the traditional scheduler.
struct BaselineEntry {
  std::string benchmark;
  std::uint32_t iq_entries = 0;
  double ipc = 0.0;

  friend bool operator==(const BaselineEntry&, const BaselineEntry&) = default;
};

/// Memoizes single-threaded IPC of each benchmark on the traditional
/// scheduler of a given IQ size: the denominator of the weighted-IPC
/// fairness metric (Section 2, citing [8,16]).
///
/// Concurrency-safe with per-key single-flight computation: the first
/// thread to request a key simulates it while later requesters of the
/// *same* key block on that key's slot (requests for other keys proceed
/// unhindered — there is no global lock around the simulation).
class BaselineCache {
 public:
  explicit BaselineCache(RunConfig base) : base_(std::move(base)) {}

  /// IPC of `benchmark` running alone (traditional scheduler, `iq_entries`).
  double alone_ipc(std::string_view benchmark, std::uint32_t iq_entries);

  /// Number of completed baselines.
  [[nodiscard]] std::size_t entries() const;

  /// Number of baseline simulations actually executed.  With single-flight
  /// this equals entries() no matter how many threads raced on a key.
  [[nodiscard]] std::uint64_t computations() const;

  /// All completed baselines in deterministic (benchmark, iq) order.
  [[nodiscard]] std::vector<BaselineEntry> snapshot() const;

 private:
  using Key = std::pair<std::string, std::uint32_t>;

  /// Single-flight rendezvous for one key's in-progress simulation.
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
    bool ready = false;   ///< guarded by m
    bool failed = false;  ///< guarded by m
    double ipc = 0.0;     ///< written once before ready=true
    std::string error;    ///< the owner's failure message (guarded by m)
  };

  RunConfig base_;
  mutable std::mutex mu_;  ///< guards slots_, done_, computations_
  std::map<Key, std::shared_ptr<Slot>> slots_;
  std::map<Key, double> done_;
  std::uint64_t computations_ = 0;
};

/// One mix under one scheduler configuration.
struct MixResult {
  std::string mix_name;
  double throughput_ipc = 0.0;
  double fairness = 0.0;  ///< harmonic mean of per-thread weighted IPCs
  RunResult raw;
  /// Crash isolation (SweepRequest::isolate_failures): false when every
  /// attempt at this cell died; `error` keeps the last failure message and
  /// the numeric fields above stay zero.
  bool ok = true;
  std::string error;
  unsigned attempts = 1;  ///< simulation attempts consumed (retries included)
  /// JSON diagnostic bundle for process-level failures (worker deaths under
  /// isolation=process): which worker slot, how it died, how many deaths.
  /// Empty for in-process failures and successful cells.
  std::string diag;
};

/// Runs one workload mix; `base` supplies everything except benchmarks,
/// kind and IQ size.  The run's RNG stream is derived from
/// (base.seed, mix name, iq) — never from the scheduler kind, so competing
/// schedulers are compared on identical workload randomness (a paired
/// comparison, as in the paper).
MixResult run_mix(const trace::WorkloadMix& mix, core::SchedulerKind kind,
                  std::uint32_t iq_entries, const RunConfig& base,
                  BaselineCache& baselines);

/// Aggregate of the 12 mixes for one (kind, IQ size) cell.
struct SweepCell {
  core::SchedulerKind kind = core::SchedulerKind::kTraditional;
  std::uint32_t iq_entries = 0;
  double hmean_ipc = 0.0;
  double hmean_fairness = 0.0;
  /// Harmonic mean across mixes of per-mix throughput speedup vs the
  /// traditional scheduler of the same capacity (1.0 for kTraditional).
  double ipc_speedup_vs_trad = 1.0;
  double fairness_gain_vs_trad = 1.0;
  double mean_all_stall_fraction = 0.0;  ///< Section-3 stall statistic
  double mean_iq_residency = 0.0;        ///< cycles from dispatch to issue
  std::vector<MixResult> mixes;
};

/// How run_sweep executes grid cells.
enum class SweepIsolation {
  /// Worker threads in this process (ThreadPool).  A crashing cell is
  /// contained by exception isolation only; a hard crash (segfault, OOM
  /// kill) takes the whole sweep down.
  kThread,
  /// Forked worker processes under robust::SweepSupervisor: worker deaths
  /// and hangs are detected, retried with backoff, and degrade to
  /// per-cell failures instead of killing the sweep
  /// (docs/ROBUSTNESS.md).  Requires isolate_failures.
  kProcess,
};

struct SweepRequest {
  unsigned thread_count = 2;  ///< selects the paper's 12 mixes of that size
  std::vector<core::SchedulerKind> kinds;
  std::vector<std::uint32_t> iq_sizes;
  RunConfig base;  ///< benchmarks/kind/iq fields are ignored
  /// Worker threads to fan the grid out across.  1 = serial (runs on the
  /// calling thread); 0 is invalid.  Results are bit-identical at any
  /// value.
  unsigned jobs = 1;
  /// Execution backend.  Successful cells are bit-identical across
  /// backends and across any jobs/workers count.
  SweepIsolation isolation = SweepIsolation::kThread;
  /// Worker processes for isolation=process (0 = use `jobs`).  Cell i is
  /// owned by worker i % workers, so the shard assignment is a pure
  /// function of the grid.  Invalid (std::invalid_argument) with
  /// isolation=thread.
  unsigned workers = 0;
  /// Wall-clock budget per cell under isolation=process (0 = unlimited):
  /// complements the deterministic in-simulation `hang_cycles` watchdog
  /// with a host-time bound that catches hangs outside simulated code.
  /// The offending worker is SIGKILLed and the cell retried/failed like
  /// any other worker death.
  std::uint64_t cell_timeout_ms = 0;
  /// Chaos fault-injection spec for worker processes, e.g.
  /// "kill@5,hang@13,segv@2!" (robust::ChaosPlan::parse).  Only valid with
  /// isolation=process; "" = no faults.
  std::string chaos;
  /// Supervisor liveness bound: a worker silent this long is presumed hung
  /// and SIGKILLed (isolation=process).
  std::uint64_t worker_heartbeat_timeout_ms = 2000;
  /// Optional progress sink (benches report to stderr).  With jobs > 1 it
  /// is invoked under a lock, one whole message at a time, as cells
  /// *finish* (completion order is nondeterministic).
  std::function<void(std::string_view)> progress;
  /// Crash isolation: catch per-cell failures (invariant violations, hang
  /// watchdog, exceptions), retry each failed cell `retries` times, and
  /// return partial results with the failures recorded per mix — one bad
  /// cell degrades the sweep instead of destroying it.  MSIM_CHECK
  /// failures inside isolated cells surface as msim::CheckError.
  /// Successful cells are bit-identical with isolation on or off.
  bool isolate_failures = true;
  unsigned retries = 1;
  /// Crash recovery (src/persist/, docs/CHECKPOINT.md): write-ahead journal
  /// of completed cells ("" = off).  Every finished (kind, iq, mix) cell is
  /// appended durably before the sweep moves on, so a killed sweep loses at
  /// most the cells in flight.  Under isolation=process every worker
  /// appends to its own shard `<path>.shard<slot>`; the shards are merged
  /// into `<path>` in fixed grid order when the sweep finishes, and a
  /// resume replays the union of the merged journal and any surviving
  /// shards — byte-identical even after `kill -9` of the supervisor.
  std::string journal_path;
  /// Resume from an existing journal at journal_path: completed cells are
  /// replayed from the journal instead of re-simulated (bit-identical, since
  /// the journal stores the full MixResult), the rest run normally and keep
  /// appending.  The journal's fingerprint must match this request
  /// (persist::PersistError otherwise); a missing file just runs the whole
  /// sweep.  Without `resume`, any existing journal is overwritten.
  bool resume = false;
  /// Progress event bus (obs/progress.hpp): sweep start/finish, per-cell
  /// start/retry/finish with done/total counts.  Not owned, may be nullptr.
  /// Structured sibling of the free-text `progress` callback above.
  obs::ProgressBus* progress_bus = nullptr;
  /// Host-time registry: each simulated cell is timed as a "cell:<key>"
  /// scope, so enabling span recording yields a Chrome trace of the sweep's
  /// parallel execution.  Not owned, may be nullptr.
  obs::TimerRegistry* timers = nullptr;
};

/// Runs the full cross product.  kTraditional is always run (it anchors the
/// speedups) even when absent from `request.kinds`; it is returned only if
/// requested.  Cells are ordered kind-major in request order.
/// persist::Interrupted (a pending SIGINT/SIGTERM observed by a cell whose
/// base config watches signals) is never swallowed by crash isolation: it
/// propagates after the journal has recorded every cell that completed.
std::vector<SweepCell> run_sweep(const SweepRequest& request, BaselineCache& baselines);

/// Finds the cell for (kind, iq); throws std::invalid_argument if missing.
const SweepCell& cell_for(const std::vector<SweepCell>& cells,
                          core::SchedulerKind kind, std::uint32_t iq_entries);

/// One mix that failed every attempt in an isolated sweep.
struct FailedCell {
  core::SchedulerKind kind = core::SchedulerKind::kTraditional;
  std::uint32_t iq_entries = 0;
  std::string mix_name;
  std::string error;
  unsigned attempts = 0;
  std::string diag;  ///< JSON diagnostic bundle (process-level failures)
};

/// Collects the failed mixes of an isolated sweep in grid order.
[[nodiscard]] std::vector<FailedCell> sweep_failures(
    const std::vector<SweepCell>& cells);

}  // namespace msim::sim
