#include "sim/cli_spec.hpp"

namespace msim::sim {

namespace {

// Printed by --help; one line per knob, mirroring the canonical knob table
// in EXPERIMENTS.md ("Harness knobs and exit codes") -- keep the two in
// sync.  tests/test_cli_help cross-checks every known key against this
// text, so a knob added to one list but not the other fails fast.
constexpr const char* kUsage = R"(usage: msim_cli [key=value | --flag value]...

Runs one simulator configuration (or a figure sweep) and prints a full
statistics report.  All knobs are key=value; GNU-style --flag value is
accepted for the flags marked below.  See the knob table in EXPERIMENTS.md
for the authoritative reference.  --help prints this text.

Machine:
  benchmarks=A,B,...    profile names, one per thread (1-8)    [gcc]
  sched=K               traditional | 2op_block | 2op_block_ooo |
                        2op_block_ooo_filtered | tag_elimination
  fetch=P               icount | round_robin | stall | flush   [icount]
  deadlock=D            dab | dab_shared | watchdog            [dab]
  iq=N  scan_depth=N  watchdog_timeout=N  oracle_disambiguation=0|1
  wrong_path=0|1

Run horizon:
  warmup=N  horizon=N  seed=N  max_cycles=N

Sampled simulation (docs/SAMPLING.md):
  mode=exact|sampled    sampled: one functional warm-up pass clusters the
                        run into phase regions; only one representative
                        region per cluster is simulated in detail and the
                        whole-run IPC / MPKI are reconstituted   [exact]
  region=N              region length, per-thread instructions   [2000]
  detail_warmup=N       detailed warm-up instructions before each
                        measured region                          [1000]
  pilot=N               detailed pilot length for per-thread commit-rate
                        pacing (0 = lockstep)                    [5000]
  --sampled-json PATH   write the msim.sampled.v1 estimate report

Sweep mode:
  sweep=2|3|4           12-mix figure sweep for that thread count
                        (iq and sched become comma lists)
  jobs=N (--jobs N)     sweep worker threads; results bit-identical
                        at any job count                       [hw conc.]
  --sweep-json PATH     write the sweep grid as JSON
  isolation=thread|process  sweep execution backend: worker threads, or
                        supervised worker processes that survive crashes
                        and hangs (docs/ROBUSTNESS.md)         [thread]
  workers=N             worker processes (implies isolation=process;
                        0 = jobs).  Surviving cells byte-identical at
                        any worker count

Observability (docs/OBSERVABILITY.md):
  --stats-json PATH     full metric registry as JSON
  --trace-out PATH      per-instruction pipeline trace
  trace_format=konata|gantt  trace_capacity=N
  interval=N            interval telemetry: capture a delta snapshot
                        (IPC, occupancy, stalls, phase fingerprints)
                        every N cycles                         [0 = off]
  --interval-json PATH  stream interval records as JSONL (schema
                        msim.intervals.v1; implies interval=10000 when
                        interval= is unset; single-run mode only)
  --progress            live progress events (run/interval/checkpoint,
                        sweep cells) on stderr
  --progress-json PATH  the same progress events as JSONL
  --chrome-trace PATH   host-time trace of run/sweep-cell spans in Chrome
                        trace-event JSON (chrome://tracing, Perfetto)
  --dump-config         print resolved MachineConfig JSON and exit

Robustness:
  verify=1              cycle-level invariant checking         [off]
  hang_cycles=N         abort after N commit-free cycles (0=off) [500000]
  fault_intensity=P  fault_seed=S  fault_index=I   fault injection
  isolate=0|1  retries=N                    sweep crash isolation
  cell_timeout_ms=N     isolation=process: wall-clock budget per sweep
                        cell; a worker exceeding it is SIGKILLed and the
                        cell retried like any other worker death (0=off,
                        complements the in-simulation hang_cycles)
  chaos=SPEC            isolation=process test knob: inject worker faults,
                        comma-separated ACTION@CELL with ACTION one of
                        kill|segv|hang and an optional trailing ! for
                        every-attempt persistence (e.g. kill@5,hang@2!)
  --diag PATH           abort diagnostic bundle    [msim-diagnostic.json]

Checkpoint / restore (docs/CHECKPOINT.md):
  --checkpoint PATH     single run: checkpoint file (periodic + on signal);
                        sweep: write-ahead journal of completed cells
  --checkpoint-every N  cycles between periodic checkpoints  [0 = on
                        interrupt only]
  --resume PATH         single run: restore checkpoint (an interval JSONL
                        stream resumes byte-identically); sweep: replay the
                        journal's completed cells, append the rest
  checkpoint_exit=N     test knob: save + exit 130 at absolute cycle N

Exit codes: 0 success; 2 bad usage or configuration error; 3 simulation
aborted (hang watchdog / invariant violation; diagnostic bundle written);
128+N killed by signal N after saving resumable state (SIGINT=130,
SIGTERM=143).
)";

constexpr std::string_view kKnownKeys[] = {
    "benchmarks", "sched", "fetch", "deadlock", "iq", "scan_depth",
    "watchdog_timeout", "oracle_disambiguation", "wrong_path", "warmup",
    "horizon", "seed", "max_cycles", "mode", "region", "detail_warmup",
    "pilot", "sampled_json", "sweep", "jobs", "sweep_json",
    "stats_json", "trace_out", "trace_format", "trace_capacity",
    "interval", "interval_json", "progress", "progress_json", "chrome_trace",
    "dump_config", "verify", "hang_cycles", "fault_intensity", "fault_seed",
    "fault_index", "isolate", "retries", "diag", "checkpoint",
    "checkpoint_every", "checkpoint_exit", "resume", "help",
    "isolation", "workers", "cell_timeout_ms", "chaos"};

constexpr std::string_view kValueFlags[] = {
    "stats_json",   "trace_out",     "trace_format", "trace_capacity",
    "jobs",         "sweep_json",    "diag",         "checkpoint",
    "checkpoint_every", "resume",    "interval",     "interval_json",
    "progress_json", "chrome_trace", "sampled_json"};

}  // namespace

std::string_view cli_usage() { return kUsage; }

std::span<const std::string_view> cli_known_keys() { return kKnownKeys; }

std::span<const std::string_view> cli_value_flags() { return kValueFlags; }

}  // namespace msim::sim
