#include "sim/cli_spec.hpp"

namespace msim::sim {

namespace {

// Printed by --help; one line per knob, mirroring the canonical knob table
// in EXPERIMENTS.md ("Harness knobs and exit codes") -- keep the two in
// sync.  tests/test_cli_help cross-checks every known key against this
// text, so a knob added to one list but not the other fails fast.
constexpr const char* kUsage = R"(usage: msim_cli [key=value | --flag value]...

Runs one simulator configuration (or a figure sweep) and prints a full
statistics report.  All knobs are key=value; GNU-style --flag value is
accepted for the flags marked below.  See the knob table in EXPERIMENTS.md
for the authoritative reference.  --help prints this text.

Machine:
  benchmarks=A,B,...    profile names, one per thread (1-8)    [gcc]
  sched=K               traditional | 2op_block | 2op_block_ooo |
                        2op_block_ooo_filtered | tag_elimination
  fetch=P               icount | round_robin | stall | flush   [icount]
  deadlock=D            dab | dab_shared | watchdog            [dab]
  iq=N  scan_depth=N  watchdog_timeout=N  oracle_disambiguation=0|1
  wrong_path=0|1

Run horizon:
  warmup=N  horizon=N  seed=N  max_cycles=N

Sampled simulation (docs/SAMPLING.md):
  mode=exact|sampled    sampled: one functional warm-up pass clusters the
                        run into phase regions; only one representative
                        region per cluster is simulated in detail and the
                        whole-run IPC / MPKI are reconstituted   [exact]
  region=N              region length, per-thread instructions   [2000]
  detail_warmup=N       detailed warm-up instructions before each
                        measured region                          [1000]
  pilot=N               detailed pilot length for per-thread commit-rate
                        pacing (0 = lockstep)                    [5000]
  --sampled-json PATH   write the msim.sampled.v1 estimate report

Sweep mode:
  sweep=2|3|4           12-mix figure sweep for that thread count
                        (iq and sched become comma lists)
  jobs=N (--jobs N)     sweep worker threads; results bit-identical
                        at any job count                       [hw conc.]
  --sweep-json PATH     write the sweep grid as JSON
  isolation=thread|process  sweep execution backend: worker threads, or
                        supervised worker processes that survive crashes
                        and hangs (docs/ROBUSTNESS.md)         [thread]
  workers=N             worker processes (implies isolation=process;
                        0 = jobs).  Surviving cells byte-identical at
                        any worker count

Observability (docs/OBSERVABILITY.md):
  --stats-json PATH     full metric registry as JSON
  --trace-out PATH      per-instruction pipeline trace
  trace_format=konata|gantt  trace_capacity=N
  interval=N            interval telemetry: capture a delta snapshot
                        (IPC, occupancy, stalls, phase fingerprints)
                        every N cycles                         [0 = off]
  --interval-json PATH  stream interval records as JSONL (schema
                        msim.intervals.v1; implies interval=10000 when
                        interval= is unset; single-run mode only)
  --progress            live progress events (run/interval/checkpoint,
                        sweep cells) on stderr
  --progress-json PATH  the same progress events as JSONL
  --chrome-trace PATH   host-time trace of run/sweep-cell spans in Chrome
                        trace-event JSON (chrome://tracing, Perfetto)
  --dump-config         print resolved MachineConfig JSON and exit

Robustness:
  verify=1              cycle-level invariant checking         [off]
  hang_cycles=N         abort after N commit-free cycles (0=off) [500000]
  fault_intensity=P  fault_seed=S  fault_index=I   fault injection
  isolate=0|1  retries=N                    sweep crash isolation
  cell_timeout_ms=N     isolation=process: wall-clock budget per sweep
                        cell; a worker exceeding it is SIGKILLed and the
                        cell retried like any other worker death (0=off,
                        complements the in-simulation hang_cycles)
  chaos=SPEC            isolation=process test knob: inject worker faults,
                        comma-separated ACTION@CELL with ACTION one of
                        kill|segv|hang and an optional trailing ! for
                        every-attempt persistence (e.g. kill@5,hang@2!)
  --diag PATH           abort diagnostic bundle    [msim-diagnostic.json]

Checkpoint / restore (docs/CHECKPOINT.md):
  --checkpoint PATH     single run: checkpoint file (periodic + on signal);
                        sweep: write-ahead journal of completed cells
  --checkpoint-every N  cycles between periodic checkpoints  [0 = on
                        interrupt only]
  --resume PATH         single run: restore checkpoint (an interval JSONL
                        stream resumes byte-identically); sweep: replay the
                        journal's completed cells, append the rest
  checkpoint_exit=N     test knob: save + exit 130 at absolute cycle N

Exit codes: 0 success; 2 bad usage or configuration error; 3 simulation
aborted (hang watchdog / invariant violation; diagnostic bundle written);
128+N killed by signal N after saving resumable state (SIGINT=130,
SIGTERM=143).
)";

constexpr std::string_view kKnownKeys[] = {
    "benchmarks", "sched", "fetch", "deadlock", "iq", "scan_depth",
    "watchdog_timeout", "oracle_disambiguation", "wrong_path", "warmup",
    "horizon", "seed", "max_cycles", "mode", "region", "detail_warmup",
    "pilot", "sampled_json", "sweep", "jobs", "sweep_json",
    "stats_json", "trace_out", "trace_format", "trace_capacity",
    "interval", "interval_json", "progress", "progress_json", "chrome_trace",
    "dump_config", "verify", "hang_cycles", "fault_intensity", "fault_seed",
    "fault_index", "isolate", "retries", "diag", "checkpoint",
    "checkpoint_every", "checkpoint_exit", "resume", "help",
    "isolation", "workers", "cell_timeout_ms", "chaos"};

constexpr std::string_view kValueFlags[] = {
    "stats_json",   "trace_out",     "trace_format", "trace_capacity",
    "jobs",         "sweep_json",    "diag",         "checkpoint",
    "checkpoint_every", "resume",    "interval",     "interval_json",
    "progress_json", "chrome_trace", "sampled_json"};

// ---------------------------------------------------------------------------
// msim_serve: daemon command line + network request surface.

constexpr const char* kServeUsage =
    R"(usage: msim_serve [key=value | --flag value]...

Experiment daemon: accepts simulation jobs as JSON over a minimal HTTP/1.1
API and serves results byte-identical to the offline msim_cli engine.  The
wire schema, queue semantics and ops runbook live in docs/SERVICE.md.

Daemon knobs:
  --port N              TCP port to listen on (0 = ephemeral; the chosen
                        port is printed as `listening on HOST:PORT`)  [0]
  --host ADDR           bind address                          [127.0.0.1]
  --queue-depth N       max queued (not yet running) jobs; a full queue
                        rejects submissions with 429              [64]
  --max-inflight N      jobs executed concurrently                 [2]
  --journal-dir DIR     durability root: the crash-recovering job ledger
                        DIR/ledger.jsonl, per-job sweep journals
                        DIR/job<id>.jsonl and result files
                        DIR/job<id>.result.json.  On restart the ledger is
                        replayed: done jobs re-serve byte-identically,
                        pending jobs re-enqueue, interrupted sweeps resume
                        from their journals                        [""]
  --io-timeout-ms N     per-socket read/write inactivity budget; slow or
                        stalled clients get 408 / are dropped    [10000]
  --help                print this text

Wire API (one-line summary; see docs/SERVICE.md):
  GET  /healthz                 liveness probe (byte-stable {"ok":true})
  GET  /v1/healthz              readiness + ledger recovery progress JSON
  GET  /v1/stats                daemon counters as JSON
  POST /v1/jobs                 submit {"config":{...}} -> 202 {"id":N};
                                optional "priority", "idempotency_key"
                                (dedupes resubmissions) and "ttl_ms"
                                (queued longer than this -> expired)
  GET  /v1/jobs/ID              job status JSON
  GET  /v1/jobs/ID/result      finished job's report (byte-identical to
                                msim_cli --stats-json / --sweep-json)
  GET  /v1/jobs/ID/events      progress stream, chunked JSONL
  POST /v1/jobs/ID/cancel      cooperative cancel (journal stays resumable)
  POST /v1/shutdown             graceful drain + exit 0

Exit codes: 0 clean shutdown (POST /v1/shutdown); 2 bad usage or bind
failure; 128+N killed by signal N after a graceful drain (SIGINT=130,
SIGTERM=143; a second signal cancels running jobs instead of waiting).
)";

constexpr std::string_view kServeKnownKeys[] = {
    "port", "host", "queue_depth", "max_inflight", "journal_dir",
    "io_timeout_ms", "help"};

constexpr std::string_view kServeValueFlags[] = {
    "port", "host", "queue_depth", "max_inflight", "journal_dir",
    "io_timeout_ms"};

// Simulation knobs a job's JSON "config" may carry.  Must stay a strict
// subset of kKnownKeys with identical spellings; config construction is
// shared with msim_cli (sim/config_build.hpp).
constexpr std::string_view kServeRequestKeys[] = {
    "benchmarks", "sched", "fetch", "deadlock", "iq", "scan_depth",
    "watchdog_timeout", "oracle_disambiguation", "wrong_path", "warmup",
    "horizon", "seed", "max_cycles", "verify", "hang_cycles",
    "fault_intensity", "fault_seed", "fault_index", "sweep", "jobs",
    "isolate", "retries", "isolation", "workers", "cell_timeout_ms",
    "chaos", "interval", "mode", "region", "detail_warmup", "pilot"};

// CLI knobs the network API refuses, each with the reason echoed in the
// 400 body.  kServeRequestKeys + kServeRejectedKeys == kKnownKeys exactly
// (tests/test_serve_wire.cpp enforces the partition).
constexpr RejectedKey kServeRejectedKeys[] = {
    {"sampled_json",
     "server-local output path; GET /v1/jobs/<id>/result serves the same "
     "bytes"},
    {"stats_json",
     "server-local output path; GET /v1/jobs/<id>/result serves the same "
     "bytes"},
    {"sweep_json",
     "server-local output path; GET /v1/jobs/<id>/result serves the same "
     "bytes"},
    {"interval_json", "server-local output path; single-run CLI streaming "
                      "only"},
    {"trace_out", "server-local output path; trace files are CLI-only"},
    {"trace_format", "trace files are CLI-only"},
    {"trace_capacity", "trace files are CLI-only"},
    {"progress",
     "terminal progress is CLI-only; stream GET /v1/jobs/<id>/events"},
    {"progress_json",
     "server-local output path; stream GET /v1/jobs/<id>/events"},
    {"chrome_trace", "server-local output path; host-time tracing is "
                     "CLI-only"},
    {"dump_config", "prints to the server's stdout; use msim_cli"},
    {"diag", "server-local output path; failures are reported in the job "
             "status"},
    {"checkpoint",
     "journal paths are assigned server-side (--journal-dir); clients never "
     "name server files"},
    {"checkpoint_every", "single-run checkpointing is CLI-only"},
    {"checkpoint_exit", "test knob that exits the process; CLI-only"},
    {"resume", "journal paths are assigned server-side (--journal-dir)"},
    {"help", "CLI flag, not a simulation knob"}};

}  // namespace

std::string_view cli_usage() { return kUsage; }

std::span<const std::string_view> cli_known_keys() { return kKnownKeys; }

std::span<const std::string_view> cli_value_flags() { return kValueFlags; }

std::string_view serve_usage() { return kServeUsage; }

std::span<const std::string_view> serve_known_keys() {
  return kServeKnownKeys;
}

std::span<const std::string_view> serve_value_flags() {
  return kServeValueFlags;
}

std::span<const std::string_view> serve_request_keys() {
  return kServeRequestKeys;
}

std::span<const RejectedKey> serve_rejected_keys() {
  return kServeRejectedKeys;
}

}  // namespace msim::sim
