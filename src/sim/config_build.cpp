#include "sim/config_build.hpp"

#include <algorithm>
#include <stdexcept>

#include "robust/fault.hpp"

namespace msim::sim {

core::SchedulerKind parse_scheduler_kind(const std::string& name) {
  for (const auto kind :
       {core::SchedulerKind::kTraditional, core::SchedulerKind::kTwoOpBlock,
        core::SchedulerKind::kTwoOpBlockOoo,
        core::SchedulerKind::kTwoOpBlockOooFiltered,
        core::SchedulerKind::kTagElimination}) {
    if (name == core::scheduler_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown sched: '" + name + "'");
}

smt::FetchPolicy parse_fetch_policy(const std::string& name) {
  for (const auto policy :
       {smt::FetchPolicy::kIcount, smt::FetchPolicy::kRoundRobin,
        smt::FetchPolicy::kStall, smt::FetchPolicy::kFlush}) {
    if (name == smt::fetch_policy_name(policy)) return policy;
  }
  throw std::invalid_argument("unknown fetch: '" + name + "'");
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> normalize_cli_args(
    int argc, char** argv, std::span<const std::string_view> value_flags) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      a.erase(0, 2);
      std::replace(a.begin(), a.end(), '-', '_');
      if (a.find('=') == std::string::npos) {
        const bool takes_value =
            std::find(value_flags.begin(), value_flags.end(), a) !=
            value_flags.end();
        if (takes_value) {
          if (i + 1 >= argc) {
            throw std::invalid_argument("--" + a + " requires a value");
          }
          a += '=';
          a += argv[++i];
        } else {
          a += "=1";
        }
      }
    }
    out.push_back(std::move(a));
  }
  return out;
}

BuiltRun build_run_config(const KvConfig& kv) {
  BuiltRun built;
  RunConfig& cfg = built.config;
  cfg.benchmarks = split_csv(kv.get_string("benchmarks", "gcc"));
  if (kv.get_uint("sweep", 0) == 0) {
    cfg.kind = parse_scheduler_kind(kv.get_string("sched", "traditional"));
    cfg.iq_entries = static_cast<std::uint32_t>(kv.get_uint("iq", 64));
  }
  cfg.fetch_policy = parse_fetch_policy(kv.get_string("fetch", "icount"));
  cfg.scan_depth = static_cast<std::uint32_t>(kv.get_uint("scan_depth", 0));
  cfg.watchdog_timeout =
      static_cast<std::uint32_t>(kv.get_uint("watchdog_timeout", 450));
  cfg.oracle_disambiguation = kv.get_bool("oracle_disambiguation", true);
  cfg.model_wrong_path = kv.get_bool("wrong_path", false);
  cfg.warmup = kv.get_uint("warmup", 20'000);
  cfg.horizon = kv.get_uint("horizon", 100'000);
  cfg.seed = kv.get_uint("seed", 1);
  cfg.max_cycles = kv.get_uint("max_cycles", 0);
  const std::string deadlock = kv.get_string("deadlock", "dab");
  if (deadlock == "dab") {
    cfg.deadlock = core::DeadlockMode::kAvoidanceBuffer;
  } else if (deadlock == "dab_shared") {
    cfg.deadlock = core::DeadlockMode::kAvoidanceBuffer;
    cfg.dab_exclusive = false;
  } else if (deadlock == "watchdog") {
    cfg.deadlock = core::DeadlockMode::kWatchdog;
  } else {
    throw std::invalid_argument("unknown deadlock: '" + deadlock + "'");
  }

  cfg.verify = kv.get_bool("verify", false);
  cfg.hang_cycles = kv.get_uint("hang_cycles", 500'000);
  cfg.interval_cycles = kv.get_uint("interval", 0);

  const double fault_intensity = kv.get_double("fault_intensity", 0.0);
  if (fault_intensity > 0.0) {
    const robust::FaultPlan plan =
        robust::FaultPlan::random(kv.get_uint("fault_seed", 1),
                                  kv.get_uint("fault_index", 0),
                                  fault_intensity);
    built.fault_note = plan.describe();
    built.injector = std::make_shared<robust::FaultInjector>(plan);
    cfg.faults = built.injector.get();
  }
  return built;
}

SweepRequest build_sweep_request(const KvConfig& kv, const RunConfig& base,
                                 unsigned thread_count, unsigned jobs) {
  SweepRequest req;
  req.thread_count = thread_count;
  for (const std::string& name : split_csv(
           kv.get_string("sched", "traditional,2op_block,2op_block_ooo"))) {
    req.kinds.push_back(parse_scheduler_kind(name));
  }
  for (const std::string& s :
       split_csv(kv.get_string("iq", "32,48,64,96,128"))) {
    req.iq_sizes.push_back(static_cast<std::uint32_t>(std::stoul(s)));
  }
  req.base = base;
  req.jobs = jobs;
  req.isolate_failures = kv.get_bool("isolate", true);
  req.retries = static_cast<unsigned>(kv.get_uint("retries", 1));
  // Process isolation (docs/ROBUSTNESS.md): workers= implies the process
  // backend, so `workers=4` alone does the expected thing.
  const std::string isolation = kv.get_string("isolation", "");
  const std::uint64_t workers = kv.get_uint("workers", 0);
  if (isolation == "process" || (isolation.empty() && workers != 0)) {
    req.isolation = SweepIsolation::kProcess;
    req.workers = static_cast<unsigned>(workers);
  } else if (!isolation.empty() && isolation != "thread") {
    throw std::invalid_argument("unknown isolation: '" + isolation +
                                "' (thread | process)");
  } else if (workers != 0) {
    throw std::invalid_argument(
        "workers= selects worker processes and requires isolation=process "
        "(or drop isolation= and let workers= imply it)");
  }
  req.cell_timeout_ms = kv.get_uint("cell_timeout_ms", 0);
  req.chaos = kv.get_string("chaos", "");
  return req;
}

}  // namespace msim::sim
