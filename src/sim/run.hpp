// Single-simulation driver: builds a Pipeline for a workload + scheduler
// configuration, runs warm-up, measures, and snapshots every statistic the
// experiments need.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "bpred/predictor.hpp"
#include "core/scheduler.hpp"
#include "mem/hierarchy.hpp"
#include "obs/interval.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "smt/machine_config.hpp"
#include "smt/pipeline.hpp"

namespace msim::robust {
class FaultInjector;
}

namespace msim::sim {

struct RunConfig {
  /// Benchmark profile names, one per hardware thread.
  std::vector<std::string> benchmarks;
  core::SchedulerKind kind = core::SchedulerKind::kTraditional;
  std::uint32_t iq_entries = 64;
  core::DeadlockMode deadlock = core::DeadlockMode::kAvoidanceBuffer;
  /// 0 = scan the whole rename buffer (the default OOO dispatch depth).
  std::uint32_t scan_depth = 0;
  bool dab_exclusive = true;
  std::uint32_t watchdog_timeout = 450;
  /// Perfect memory disambiguation in the LSQ (ablation knob).
  bool oracle_disambiguation = true;
  /// Fetch policy (ICOUNT is the paper's baseline).
  smt::FetchPolicy fetch_policy = smt::FetchPolicy::kIcount;
  /// Model wrong-path execution (see smt::MachineConfig).
  bool model_wrong_path = false;

  std::uint64_t seed = 1;
  /// Committed instructions (from any thread) before statistics reset.
  std::uint64_t warmup = 30'000;
  /// Committed instructions (from any thread, post-warm-up) to measure.
  /// This mirrors the paper's "stop after 100M from any thread" rule.
  std::uint64_t horizon = 150'000;
  /// Safety valve: abort the run after this many cycles (0 = none).
  std::uint64_t max_cycles = 0;
  /// Per-instruction lifecycle trace ring capacity in events (0 = off).
  std::size_t trace_capacity = 0;

  // Interval telemetry (src/obs/interval.hpp, docs/OBSERVABILITY.md).
  /// Cycles per interval snapshot (0 = off).
  std::uint64_t interval_cycles = 0;
  /// Stream interval records as JSONL to this path ("" = in-memory only).
  /// Written as `<path>.part` during the run and atomically renamed on
  /// clean completion; an interrupted run's .part is resumed byte-exactly.
  /// Requires interval_cycles != 0.
  std::string interval_json;
  /// Progress event bus to publish run milestones on (run start/finish,
  /// interval ticks, checkpoint saves); not owned, may be nullptr.
  obs::ProgressBus* progress_bus = nullptr;

  // Robustness (src/robust/).
  /// Cycle-level invariant checking (robust::InvariantChecker); a violation
  /// aborts the run with robust::SimulationAborted.
  bool verify = false;
  /// Simulator hang watchdog threshold in commit-free cycles (0 = off);
  /// see smt::MachineConfig::hang_cycles.
  std::uint64_t hang_cycles = 500'000;
  /// Fault injector; not owned, may be nullptr (fault-free).  The injector
  /// decides per run whether its plan targets this run's RNG stream.
  const robust::FaultInjector* faults = nullptr;

  // Checkpoint / restore (src/persist/, docs/CHECKPOINT.md).
  /// Checkpoint file to write ("" = checkpointing off).  Written atomically
  /// (temp + rename) at every `checkpoint_every` boundary and on interrupt.
  std::string checkpoint_path;
  /// Absolute-cycle period between periodic checkpoints (0 = only save on
  /// interrupt).  Boundaries are aligned to absolute multiples of this
  /// period, so a checkpoint's content never depends on how many times the
  /// run was already suspended and resumed.
  std::uint64_t checkpoint_every = 0;
  /// Checkpoint file to restore before running ("" = fresh run).  The file
  /// must have been saved by a run with an identical configuration
  /// (fingerprint-checked; persist::PersistError otherwise).
  std::string resume_path;
  /// Deterministic-interrupt test knob: once the absolute cycle reaches
  /// this value, save a checkpoint and throw persist::Interrupted as if
  /// SIGINT had arrived at exactly that cycle (0 = off).  Requires
  /// checkpoint_path.
  std::uint64_t checkpoint_exit_cycles = 0;
  /// Poll persist::signal_pending at chunk boundaries; on SIGINT/SIGTERM,
  /// save a final checkpoint (when checkpoint_path is set) and throw
  /// persist::Interrupted.  The caller installs persist::SignalGuard.
  bool watch_signals = false;
  /// Cooperative per-run cancellation (the serve daemon's per-job cancel,
  /// docs/SERVICE.md): polled at the same chunk boundaries as
  /// watch_signals; once the flag is true the run saves a final checkpoint
  /// (when checkpoint_path is set) and throws persist::Cancelled.  Unlike
  /// the process-wide signal flag, this stops exactly one run.  Not owned,
  /// may be nullptr; never part of fingerprint().
  const std::atomic<bool>* cancel = nullptr;

  /// Builds the Table-1 machine with this run's scheduler settings applied.
  [[nodiscard]] smt::MachineConfig machine() const;

  /// Stable hash of every knob that shapes the simulation (workload, seed,
  /// machine and horizon knobs — not the checkpoint/observability knobs).
  /// Stored in checkpoints so a resume against a different configuration
  /// fails loudly instead of silently diverging.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Rejects unrunnable configurations (no benchmarks, zero horizon,
  /// zero-size structures, an unarmable watchdog...) with an actionable
  /// std::invalid_argument.  run_simulation calls this first.
  void validate() const;
};

/// Snapshot of one run's results.
struct RunResult {
  Cycle cycles = 0;
  std::vector<double> per_thread_ipc;
  std::vector<std::uint64_t> per_thread_committed;
  double throughput_ipc = 0.0;

  core::DispatchStats dispatch;
  core::IqStats iq;
  double iq_mean_occupancy = 0.0;
  mem::HierarchyStats memory;
  bpred::PredictorStats bpred;
  smt::PipelineStats pipeline;

  /// True when the run hit `max_cycles` before committing `horizon`.
  bool truncated = false;

  /// FNV-1a digest over the (tid, seq, cycle) commit stream since pipeline
  /// construction.  Bit-identity witness: a checkpointed-and-resumed run
  /// must reproduce the straight run's digest exactly.
  std::uint64_t commit_digest = 0;

  /// Full registry snapshot, sorted by metric name (see obs::StatRegistry).
  std::vector<obs::MetricSnapshot> metrics;
  /// Lifecycle trace, oldest event first (empty unless trace_capacity > 0).
  std::vector<obs::TraceEvent> trace;
  /// Events lost to the trace ring wrapping around.
  std::uint64_t trace_dropped = 0;

  /// Interval telemetry ring at run end, oldest first (empty unless
  /// interval_cycles > 0); `intervals_dropped` counts ring evictions.
  std::vector<obs::IntervalRecord> intervals;
  std::uint64_t intervals_dropped = 0;
};

/// Runs one simulation to completion and returns the measured statistics.
/// Throws std::invalid_argument for invalid configurations or unknown
/// benchmark names, and robust::SimulationAborted (carrying a JSON
/// diagnostic bundle) when the hang watchdog fires or — under verify —
/// an invariant check fails.  With the checkpoint knobs engaged it may
/// also throw persist::Interrupted (state already saved) and
/// persist::PersistError (unloadable or mismatched resume file).
[[nodiscard]] RunResult run_simulation(const RunConfig& config);

}  // namespace msim::sim
