// Single-simulation driver: builds a Pipeline for a workload + scheduler
// configuration, runs warm-up, measures, and snapshots every statistic the
// experiments need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bpred/predictor.hpp"
#include "core/scheduler.hpp"
#include "mem/hierarchy.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "smt/machine_config.hpp"
#include "smt/pipeline.hpp"

namespace msim::robust {
class FaultInjector;
}

namespace msim::sim {

struct RunConfig {
  /// Benchmark profile names, one per hardware thread.
  std::vector<std::string> benchmarks;
  core::SchedulerKind kind = core::SchedulerKind::kTraditional;
  std::uint32_t iq_entries = 64;
  core::DeadlockMode deadlock = core::DeadlockMode::kAvoidanceBuffer;
  /// 0 = scan the whole rename buffer (the default OOO dispatch depth).
  std::uint32_t scan_depth = 0;
  bool dab_exclusive = true;
  std::uint32_t watchdog_timeout = 450;
  /// Perfect memory disambiguation in the LSQ (ablation knob).
  bool oracle_disambiguation = true;
  /// Fetch policy (ICOUNT is the paper's baseline).
  smt::FetchPolicy fetch_policy = smt::FetchPolicy::kIcount;
  /// Model wrong-path execution (see smt::MachineConfig).
  bool model_wrong_path = false;

  std::uint64_t seed = 1;
  /// Committed instructions (from any thread) before statistics reset.
  std::uint64_t warmup = 30'000;
  /// Committed instructions (from any thread, post-warm-up) to measure.
  /// This mirrors the paper's "stop after 100M from any thread" rule.
  std::uint64_t horizon = 150'000;
  /// Safety valve: abort the run after this many cycles (0 = none).
  std::uint64_t max_cycles = 0;
  /// Per-instruction lifecycle trace ring capacity in events (0 = off).
  std::size_t trace_capacity = 0;

  // Robustness (src/robust/).
  /// Cycle-level invariant checking (robust::InvariantChecker); a violation
  /// aborts the run with robust::SimulationAborted.
  bool verify = false;
  /// Simulator hang watchdog threshold in commit-free cycles (0 = off);
  /// see smt::MachineConfig::hang_cycles.
  std::uint64_t hang_cycles = 500'000;
  /// Fault injector; not owned, may be nullptr (fault-free).  The injector
  /// decides per run whether its plan targets this run's RNG stream.
  const robust::FaultInjector* faults = nullptr;

  /// Builds the Table-1 machine with this run's scheduler settings applied.
  [[nodiscard]] smt::MachineConfig machine() const;

  /// Rejects unrunnable configurations (no benchmarks, zero horizon,
  /// zero-size structures, an unarmable watchdog...) with an actionable
  /// std::invalid_argument.  run_simulation calls this first.
  void validate() const;
};

/// Snapshot of one run's results.
struct RunResult {
  Cycle cycles = 0;
  std::vector<double> per_thread_ipc;
  std::vector<std::uint64_t> per_thread_committed;
  double throughput_ipc = 0.0;

  core::DispatchStats dispatch;
  core::IqStats iq;
  double iq_mean_occupancy = 0.0;
  mem::HierarchyStats memory;
  bpred::PredictorStats bpred;
  smt::PipelineStats pipeline;

  /// True when the run hit `max_cycles` before committing `horizon`.
  bool truncated = false;

  /// Full registry snapshot, sorted by metric name (see obs::StatRegistry).
  std::vector<obs::MetricSnapshot> metrics;
  /// Lifecycle trace, oldest event first (empty unless trace_capacity > 0).
  std::vector<obs::TraceEvent> trace;
  /// Events lost to the trace ring wrapping around.
  std::uint64_t trace_dropped = 0;
};

/// Runs one simulation to completion and returns the measured statistics.
/// Throws std::invalid_argument for invalid configurations or unknown
/// benchmark names, and robust::SimulationAborted (carrying a JSON
/// diagnostic bundle) when the hang watchdog fires or — under verify —
/// an invariant check fails.
[[nodiscard]] RunResult run_simulation(const RunConfig& config);

}  // namespace msim::sim
