// Single source of truth for the msim_cli and msim_serve surfaces: the
// --help texts, the sets of accepted keys, and which GNU-style --flags take
// a value.
//
// msim_cli consumes the cli_* functions for parsing and help; tests
// cross-check them against each other (every accepted key must be
// documented in the usage text and vice versa), so adding a knob in one
// place but not the other fails CI instead of silently shipping an
// undocumented flag.
//
// The serve_* functions define the msim_serve daemon the same way, plus
// the *request* surface: which simulation knobs a job's JSON config may
// carry over the wire.  serve_request_keys() and serve_rejected_keys()
// partition cli_known_keys() exactly -- every CLI knob is either accepted
// in a request or rejected with a documented reason (local-output paths,
// single-process modes, CLI-only flags).  tests/test_serve_wire.cpp
// enforces the partition, so a knob added to the CLI cannot silently
// drift into (or out of) the network API.
#pragma once

#include <span>
#include <string_view>

namespace msim::sim {

/// The full --help text (also mirrored by the knob table in EXPERIMENTS.md).
[[nodiscard]] std::string_view cli_usage();

/// Every key=value key msim_cli accepts, normalized (dashes folded to
/// underscores), including bare-flag keys like "help" and "dump_config".
[[nodiscard]] std::span<const std::string_view> cli_known_keys();

/// The --flag spellings that consume a following value ("--stats-json x"
/// becomes stats_json=x); all other --flags are booleans ("--progress"
/// becomes progress=1).  Normalized names, underscores.
[[nodiscard]] std::span<const std::string_view> cli_value_flags();

/// msim_serve's own --help text (daemon knobs + wire API summary; the
/// authoritative wire reference is docs/SERVICE.md).
[[nodiscard]] std::string_view serve_usage();

/// Every key=value key the msim_serve *daemon command line* accepts
/// (port, queue sizing, journal directory...), normalized.
[[nodiscard]] std::span<const std::string_view> serve_known_keys();

/// msim_serve --flag spellings that consume a following value.
[[nodiscard]] std::span<const std::string_view> serve_value_flags();

/// The simulation knobs a POST /v1/jobs request's "config" object may
/// carry.  Spelling, parsing and defaults are identical to the msim_cli
/// keys of the same name (both front ends build configs through
/// sim/config_build.hpp).
[[nodiscard]] std::span<const std::string_view> serve_request_keys();

/// A CLI knob the network API refuses, with the one-line reason served
/// back in the 400 body (and documented in docs/SERVICE.md).
struct RejectedKey {
  std::string_view key;
  std::string_view reason;
};

/// CLI knobs rejected in requests.  Together with serve_request_keys()
/// this covers cli_known_keys() exactly, with no overlap.
[[nodiscard]] std::span<const RejectedKey> serve_rejected_keys();

}  // namespace msim::sim
