// Single source of truth for the msim_cli command-line surface: the --help
// text, the set of accepted keys, and which GNU-style --flags take a value.
//
// msim_cli consumes these for parsing and help; tests cross-check them
// against each other (every accepted key must be documented in the usage
// text and vice versa), so adding a knob in one place but not the other
// fails CI instead of silently shipping an undocumented flag.
#pragma once

#include <span>
#include <string_view>

namespace msim::sim {

/// The full --help text (also mirrored by the knob table in EXPERIMENTS.md).
[[nodiscard]] std::string_view cli_usage();

/// Every key=value key msim_cli accepts, normalized (dashes folded to
/// underscores), including bare-flag keys like "help" and "dump_config".
[[nodiscard]] std::span<const std::string_view> cli_known_keys();

/// The --flag spellings that consume a following value ("--stats-json x"
/// becomes stats_json=x); all other --flags are booleans ("--progress"
/// becomes progress=1).  Normalized names, underscores.
[[nodiscard]] std::span<const std::string_view> cli_value_flags();

}  // namespace msim::sim
