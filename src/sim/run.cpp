#include "sim/run.hpp"

#include <algorithm>
#include <csignal>
#include <stdexcept>

#include "common/check.hpp"
#include "persist/checkpoint.hpp"
#include "persist/interval_stream.hpp"
#include "persist/signal.hpp"
#include "robust/diagnostic.hpp"
#include "robust/fault.hpp"
#include "robust/invariant.hpp"
#include "trace/profile.hpp"

namespace msim::sim {

smt::MachineConfig RunConfig::machine() const {
  smt::MachineConfig mc;
  mc.thread_count = static_cast<unsigned>(benchmarks.size());
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = iq_entries;
  mc.scheduler.deadlock = deadlock;
  mc.scheduler.scan_depth = scan_depth;
  mc.scheduler.dab_exclusive = dab_exclusive;
  mc.scheduler.watchdog_timeout = watchdog_timeout;
  mc.oracle_disambiguation = oracle_disambiguation;
  mc.fetch_policy = fetch_policy;
  mc.model_wrong_path = model_wrong_path;
  mc.trace_capacity = trace_capacity;
  mc.interval_cycles = interval_cycles;
  mc.hang_cycles = hang_cycles;
  return mc;
}

namespace {

/// Incremental FNV-1a over explicitly widened values: endianness- and
/// platform-independent, so a fingerprint travels with its checkpoint.
struct Fingerprint {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void byte(std::uint8_t b) noexcept {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void str(const std::string& s) noexcept {
    u64(s.size());
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

}  // namespace

std::uint64_t RunConfig::fingerprint() const {
  Fingerprint f;
  f.u64(benchmarks.size());
  for (const std::string& b : benchmarks) f.str(b);
  f.u64(static_cast<std::uint64_t>(kind));
  f.u64(iq_entries);
  f.u64(static_cast<std::uint64_t>(deadlock));
  f.u64(scan_depth);
  f.u64(dab_exclusive ? 1 : 0);
  f.u64(watchdog_timeout);
  f.u64(oracle_disambiguation ? 1 : 0);
  f.u64(static_cast<std::uint64_t>(fetch_policy));
  f.u64(model_wrong_path ? 1 : 0);
  f.u64(seed);
  f.u64(warmup);
  f.u64(horizon);
  f.u64(max_cycles);
  f.u64(trace_capacity);
  // Interval telemetry is engine state inside the checkpoint payload, so a
  // resume at a different interval= must fail the fingerprint check up
  // front rather than deep in the archive.
  f.u64(interval_cycles);
  f.u64(hang_cycles);
  // Fault injection changes machine behavior, so a faulted run's checkpoint
  // must not resume fault-free (or vice versa).
  f.u64(faults != nullptr ? 1 : 0);
  return f.h;
}

void RunConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("run config: " + msg);
  };
  if (benchmarks.empty()) {
    fail("no benchmarks named; give one profile per hardware thread "
         "(e.g. benchmarks=gcc,swim)");
  }
  if (benchmarks.size() > kMaxThreads) {
    fail(std::to_string(benchmarks.size()) + " benchmarks named but the machine "
         "supports at most " + std::to_string(kMaxThreads) + " threads");
  }
  if (horizon == 0) fail("horizon=0 would measure nothing; set horizon >= 1");
  if (checkpoint_every != 0 && checkpoint_path.empty()) {
    fail("checkpoint_every is set but checkpoint_path is empty; periodic "
         "checkpoints need somewhere to go");
  }
  if (checkpoint_exit_cycles != 0 && checkpoint_path.empty()) {
    fail("checkpoint_exit_cycles is set but checkpoint_path is empty; the "
         "deterministic interrupt saves a checkpoint before exiting");
  }
  if (!interval_json.empty() && interval_cycles == 0) {
    fail("interval_json is set but interval_cycles=0; there would be no "
         "records to stream (set interval=N, e.g. interval=10000)");
  }
  machine().validate();  // structural knobs (IQ/ROB/LSQ sizes, watchdog...)
}

namespace {

/// Chunk size for signal polling when no checkpoint period bounds the
/// chunks.  Any value yields bit-identical results (chunking never changes
/// the tick sequence); this only bounds interrupt latency.
constexpr std::uint64_t kSignalPollCycles = 8192;
constexpr std::uint64_t kNoCap = ~std::uint64_t{0};

/// The warm-up + measure loop, run in checkpoint-sized chunks.  Chunk
/// boundaries are aligned to absolute multiples of checkpoint_every, so a
/// checkpoint written at cycle C has the same bytes whether the run got
/// there straight from cycle 0 or through any number of suspend/resume
/// rounds.  With every knob off this executes the exact tick sequence of
/// the unchunked path.
void run_checkpointed(const RunConfig& config, smt::Pipeline& pipe,
                      persist::RunPhase phase) {
  const std::uint64_t fp = config.fingerprint();

  auto save = [&] {
    persist::save_checkpoint(config.checkpoint_path, pipe, {fp, phase});
    if (config.progress_bus) {
      obs::ProgressEvent ev(obs::ProgressKind::kCheckpointSaved);
      ev.label = config.checkpoint_path;
      ev.cycle = pipe.absolute_cycle();
      ev.committed = pipe.total_committed();
      config.progress_bus->publish(ev);
    }
  };
  // Raises (after saving, where a path is configured) whatever interrupt is
  // pending at this chunk boundary.  The deterministic checkpoint_exit test
  // knob reports SIGINT, so callers exit 130 exactly like a real ^C.
  auto poll_interrupts = [&] {
    if (config.checkpoint_exit_cycles != 0 &&
        pipe.absolute_cycle() >= config.checkpoint_exit_cycles) {
      save();
      throw persist::Interrupted(SIGINT);
    }
    if (config.watch_signals) {
      if (const int sig = persist::signal_pending()) {
        if (!config.checkpoint_path.empty()) save();
        throw persist::Interrupted(sig);
      }
    }
    if (config.cancel && config.cancel->load(std::memory_order_relaxed)) {
      if (!config.checkpoint_path.empty()) save();
      throw persist::Cancelled();
    }
  };

  auto run_phase = [&](std::uint64_t target) {
    for (;;) {
      bool reached = false;
      for (ThreadId t = 0; t < pipe.thread_count(); ++t) {
        if (pipe.committed(t) >= target) reached = true;
      }
      if (reached) return;
      // The phase's cycle budget counts from the phase start, exactly as
      // the single-call pipe.run(target, max_cycles) would count it.
      if (config.max_cycles != 0 && pipe.cycles() >= config.max_cycles) return;
      poll_interrupts();

      const std::uint64_t abs = pipe.absolute_cycle();
      std::uint64_t chunk = kNoCap;
      if (config.max_cycles != 0) chunk = config.max_cycles - pipe.cycles();
      if (config.checkpoint_every != 0) {
        const std::uint64_t next =
            (abs / config.checkpoint_every + 1) * config.checkpoint_every;
        chunk = std::min(chunk, next - abs);
      }
      if (config.checkpoint_exit_cycles > abs) {
        chunk = std::min(chunk, config.checkpoint_exit_cycles - abs);
      }
      if ((config.watch_signals || config.cancel != nullptr) &&
          config.checkpoint_every == 0) {
        chunk = std::min(chunk, kSignalPollCycles);
      }
      pipe.run(target, chunk == kNoCap ? 0 : chunk);

      // Periodic checkpoint — only when the chunk actually reached a period
      // boundary (the phase target can end a chunk early).
      if (config.checkpoint_every != 0 && pipe.absolute_cycle() != abs &&
          pipe.absolute_cycle() % config.checkpoint_every == 0) {
        save();
      }
    }
  };

  if (phase == persist::RunPhase::kWarmup) {
    run_phase(config.warmup);
    pipe.reset_stats();
    phase = persist::RunPhase::kMeasure;
  }
  run_phase(config.horizon);
}

}  // namespace

RunResult run_simulation(const RunConfig& config) {
  config.validate();
  std::vector<trace::BenchmarkProfile> profiles;
  profiles.reserve(config.benchmarks.size());
  for (const std::string& name : config.benchmarks) {
    profiles.push_back(trace::profile_or_throw(name));
  }

  // A fault injector decides per run whether its plan targets this run's
  // RNG stream (sweep sabotage targets exactly one cell); a null session
  // is the fault-free machine.
  std::unique_ptr<core::FaultHooks> fault_session;
  smt::MachineConfig mc = config.machine();
  if (config.faults) {
    fault_session = config.faults->session(config.seed);
    mc.fault_hooks = fault_session.get();
  }

  smt::Pipeline pipe(mc, profiles, config.seed);
  robust::InvariantChecker checker;
  if (config.verify) pipe.set_observer(&checker);

  // Restore before attaching the interval stream: the writer's resume
  // truncation needs the checkpoint's stream cursor (captured_total).
  persist::RunPhase phase = persist::RunPhase::kWarmup;
  if (!config.resume_path.empty()) {
    phase =
        persist::load_checkpoint(config.resume_path, pipe, config.fingerprint())
            .phase;
  }

  std::string run_label;
  for (const std::string& b : config.benchmarks) {
    if (!run_label.empty()) run_label += ',';
    run_label += b;
  }
  obs::ProgressBus* bus = config.progress_bus;

  std::unique_ptr<persist::IntervalStreamWriter> interval_writer;
  if (!config.interval_json.empty()) {
    interval_writer = std::make_unique<persist::IntervalStreamWriter>(
        config.interval_json, pipe.interval_engine().config(),
        pipe.thread_count(), pipe.interval_engine().captured_total());
  }
  if (interval_writer || (bus && pipe.interval_engine().enabled())) {
    pipe.interval_engine().set_sink([&](const obs::IntervalRecord& r) {
      if (interval_writer) interval_writer->append(r);
      if (bus) {
        obs::ProgressEvent ev(obs::ProgressKind::kIntervalTick);
        ev.label = run_label;
        ev.cycle = r.end_cycle;
        ev.committed = pipe.total_committed();
        ev.ipc = r.ipc;
        bus->publish(ev);
      }
    });
  }
  if (bus) {
    obs::ProgressEvent ev(obs::ProgressKind::kRunStart);
    ev.label = run_label;
    ev.cycle = pipe.absolute_cycle();
    bus->publish(ev);
  }

  const bool checkpointing = !config.checkpoint_path.empty() ||
                             !config.resume_path.empty() ||
                             config.checkpoint_exit_cycles != 0 ||
                             config.watch_signals || config.cancel != nullptr;
  auto publish_abort = [&](const std::string& what) {
    if (bus) {
      obs::ProgressEvent ev(obs::ProgressKind::kRunFinish);
      ev.label = run_label;
      ev.cycle = pipe.absolute_cycle();
      ev.committed = pipe.total_committed();
      ev.ok = false;
      ev.detail = what;
      bus->publish(ev);
    }
  };
  try {
    if (checkpointing) {
      run_checkpointed(config, pipe, phase);
    } else {
      pipe.run(config.warmup, config.max_cycles);
      pipe.reset_stats();
      pipe.run(config.horizon, config.max_cycles);
    }
  } catch (const smt::NoForwardProgress& e) {
    publish_abort(e.what());
    throw robust::SimulationAborted(
        std::string("hang watchdog: ") + e.what(),
        robust::diagnostic_bundle(pipe, e.what()));
  } catch (const CheckError& e) {
    // An invariant (cycle-level or structural MSIM_CHECK under a throwing
    // handler) failed; the machine state is suspect but still readable.
    publish_abort(e.what());
    throw robust::SimulationAborted(
        e.what(), robust::diagnostic_bundle(pipe, e.what()));
  }
  // A clean completion seals the stream (atomic .part -> final rename); an
  // interrupt or abort above leaves the .part behind for a resume.
  if (interval_writer) interval_writer->finalize();
  if (bus) {
    obs::ProgressEvent ev(obs::ProgressKind::kRunFinish);
    ev.label = run_label;
    ev.cycle = pipe.absolute_cycle();
    ev.committed = pipe.total_committed();
    ev.ipc = pipe.total_ipc();
    bus->publish(ev);
  }

  RunResult out;
  out.cycles = pipe.cycles();
  if (config.max_cycles != 0) {
    out.truncated = true;
    for (ThreadId t = 0; t < pipe.thread_count(); ++t) {
      if (pipe.committed(t) >= config.horizon) out.truncated = false;
    }
  }
  for (ThreadId t = 0; t < pipe.thread_count(); ++t) {
    out.per_thread_ipc.push_back(pipe.ipc(t));
    out.per_thread_committed.push_back(pipe.committed(t));
  }
  out.throughput_ipc = pipe.total_ipc();
  out.commit_digest = pipe.commit_digest();
  out.dispatch = pipe.scheduler().dispatch_stats();
  out.iq = pipe.scheduler().iq().stats();
  out.iq_mean_occupancy = pipe.scheduler().iq().stats().mean_occupancy();
  out.memory = pipe.memory().stats();
  out.bpred = pipe.predictor().total_stats();
  out.pipeline = pipe.stats();
  out.metrics = pipe.registry().snapshot();
  if (pipe.tracer().enabled()) {
    out.trace = pipe.tracer().events();
    out.trace_dropped = pipe.tracer().dropped();
  }
  if (pipe.interval_engine().enabled()) {
    const auto& ring = pipe.interval_engine().records();
    out.intervals.assign(ring.begin(), ring.end());
    out.intervals_dropped = pipe.interval_engine().dropped();
  }
  return out;
}

}  // namespace msim::sim
