#include "sim/run.hpp"

#include <stdexcept>

#include "common/check.hpp"
#include "robust/diagnostic.hpp"
#include "robust/fault.hpp"
#include "robust/invariant.hpp"
#include "trace/profile.hpp"

namespace msim::sim {

smt::MachineConfig RunConfig::machine() const {
  smt::MachineConfig mc;
  mc.thread_count = static_cast<unsigned>(benchmarks.size());
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = iq_entries;
  mc.scheduler.deadlock = deadlock;
  mc.scheduler.scan_depth = scan_depth;
  mc.scheduler.dab_exclusive = dab_exclusive;
  mc.scheduler.watchdog_timeout = watchdog_timeout;
  mc.oracle_disambiguation = oracle_disambiguation;
  mc.fetch_policy = fetch_policy;
  mc.model_wrong_path = model_wrong_path;
  mc.trace_capacity = trace_capacity;
  mc.hang_cycles = hang_cycles;
  return mc;
}

void RunConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("run config: " + msg);
  };
  if (benchmarks.empty()) {
    fail("no benchmarks named; give one profile per hardware thread "
         "(e.g. benchmarks=gcc,swim)");
  }
  if (benchmarks.size() > kMaxThreads) {
    fail(std::to_string(benchmarks.size()) + " benchmarks named but the machine "
         "supports at most " + std::to_string(kMaxThreads) + " threads");
  }
  if (horizon == 0) fail("horizon=0 would measure nothing; set horizon >= 1");
  machine().validate();  // structural knobs (IQ/ROB/LSQ sizes, watchdog...)
}

RunResult run_simulation(const RunConfig& config) {
  config.validate();
  std::vector<trace::BenchmarkProfile> profiles;
  profiles.reserve(config.benchmarks.size());
  for (const std::string& name : config.benchmarks) {
    profiles.push_back(trace::profile_or_throw(name));
  }

  // A fault injector decides per run whether its plan targets this run's
  // RNG stream (sweep sabotage targets exactly one cell); a null session
  // is the fault-free machine.
  std::unique_ptr<core::FaultHooks> fault_session;
  smt::MachineConfig mc = config.machine();
  if (config.faults) {
    fault_session = config.faults->session(config.seed);
    mc.fault_hooks = fault_session.get();
  }

  smt::Pipeline pipe(mc, profiles, config.seed);
  robust::InvariantChecker checker;
  if (config.verify) pipe.set_observer(&checker);

  try {
    pipe.run(config.warmup, config.max_cycles);
    pipe.reset_stats();
    pipe.run(config.horizon, config.max_cycles);
  } catch (const smt::NoForwardProgress& e) {
    throw robust::SimulationAborted(
        std::string("hang watchdog: ") + e.what(),
        robust::diagnostic_bundle(pipe, e.what()));
  } catch (const CheckError& e) {
    // An invariant (cycle-level or structural MSIM_CHECK under a throwing
    // handler) failed; the machine state is suspect but still readable.
    throw robust::SimulationAborted(
        e.what(), robust::diagnostic_bundle(pipe, e.what()));
  }

  RunResult out;
  out.cycles = pipe.cycles();
  if (config.max_cycles != 0) {
    out.truncated = true;
    for (ThreadId t = 0; t < pipe.thread_count(); ++t) {
      if (pipe.committed(t) >= config.horizon) out.truncated = false;
    }
  }
  for (ThreadId t = 0; t < pipe.thread_count(); ++t) {
    out.per_thread_ipc.push_back(pipe.ipc(t));
    out.per_thread_committed.push_back(pipe.committed(t));
  }
  out.throughput_ipc = pipe.total_ipc();
  out.dispatch = pipe.scheduler().dispatch_stats();
  out.iq = pipe.scheduler().iq().stats();
  out.iq_mean_occupancy = pipe.scheduler().iq().stats().mean_occupancy();
  out.memory = pipe.memory().stats();
  out.bpred = pipe.predictor().total_stats();
  out.pipeline = pipe.stats();
  out.metrics = pipe.registry().snapshot();
  if (pipe.tracer().enabled()) {
    out.trace = pipe.tracer().events();
    out.trace_dropped = pipe.tracer().dropped();
  }
  return out;
}

}  // namespace msim::sim
