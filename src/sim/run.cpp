#include "sim/run.hpp"

#include "common/check.hpp"
#include "trace/profile.hpp"

namespace msim::sim {

smt::MachineConfig RunConfig::machine() const {
  smt::MachineConfig mc;
  mc.thread_count = static_cast<unsigned>(benchmarks.size());
  mc.scheduler.kind = kind;
  mc.scheduler.iq_entries = iq_entries;
  mc.scheduler.deadlock = deadlock;
  mc.scheduler.scan_depth = scan_depth;
  mc.scheduler.dab_exclusive = dab_exclusive;
  mc.scheduler.watchdog_timeout = watchdog_timeout;
  mc.oracle_disambiguation = oracle_disambiguation;
  mc.fetch_policy = fetch_policy;
  mc.model_wrong_path = model_wrong_path;
  mc.trace_capacity = trace_capacity;
  return mc;
}

RunResult run_simulation(const RunConfig& config) {
  MSIM_CHECK(!config.benchmarks.empty() && config.benchmarks.size() <= kMaxThreads);
  std::vector<trace::BenchmarkProfile> profiles;
  profiles.reserve(config.benchmarks.size());
  for (const std::string& name : config.benchmarks) {
    profiles.push_back(trace::profile_or_throw(name));
  }

  smt::Pipeline pipe(config.machine(), profiles, config.seed);
  pipe.run(config.warmup, config.max_cycles);
  pipe.reset_stats();
  pipe.run(config.horizon, config.max_cycles);

  RunResult out;
  out.cycles = pipe.cycles();
  if (config.max_cycles != 0) {
    out.truncated = true;
    for (ThreadId t = 0; t < pipe.thread_count(); ++t) {
      if (pipe.committed(t) >= config.horizon) out.truncated = false;
    }
  }
  for (ThreadId t = 0; t < pipe.thread_count(); ++t) {
    out.per_thread_ipc.push_back(pipe.ipc(t));
    out.per_thread_committed.push_back(pipe.committed(t));
  }
  out.throughput_ipc = pipe.total_ipc();
  out.dispatch = pipe.scheduler().dispatch_stats();
  out.iq = pipe.scheduler().iq().stats();
  out.iq_mean_occupancy = pipe.scheduler().iq().stats().mean_occupancy();
  out.memory = pipe.memory().stats();
  out.bpred = pipe.predictor().total_stats();
  out.pipeline = pipe.stats();
  out.metrics = pipe.registry().snapshot();
  if (pipe.tracer().enabled()) {
    out.trace = pipe.tracer().events();
    out.trace_dropped = pipe.tracer().dropped();
  }
  return out;
}

}  // namespace msim::sim
