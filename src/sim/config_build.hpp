// Shared key=value -> configuration builders for the two front ends.
//
// msim_cli (examples/msim_cli.cpp) and msim_serve (src/serve/) accept the
// same simulation knobs -- one from the command line, one from a job's JSON
// "config" object.  Both build their RunConfig/SweepRequest through these
// functions, so a knob's spelling, parsing and defaults cannot drift
// between the two surfaces (tests/test_serve_wire.cpp cross-checks the key
// sets themselves against sim/cli_spec.hpp).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "sim/experiment.hpp"
#include "sim/run.hpp"

namespace msim::robust {
class FaultInjector;
}

namespace msim::sim {

/// Parses a scheduler-kind name ("traditional", "2op_block_ooo", ...);
/// throws std::invalid_argument for unknown names.
[[nodiscard]] core::SchedulerKind parse_scheduler_kind(const std::string& name);

/// Parses a fetch-policy name ("icount", "round_robin", "stall", "flush").
[[nodiscard]] smt::FetchPolicy parse_fetch_policy(const std::string& name);

/// Splits "a,b,c" into {"a","b","c"}; empty segments are dropped.
[[nodiscard]] std::vector<std::string> split_csv(const std::string& csv);

/// Folds GNU-style flags into the key=value convention: `--stats-json x`
/// and `--stats-json=x` become `stats_json=x`; a bare `--dump-config`
/// becomes `dump_config=1`.  `value_flags` (cli_value_flags() or
/// serve_value_flags()) lists the normalized flag names that consume a
/// following value.  Throws std::invalid_argument when such a flag is
/// last on the line.
[[nodiscard]] std::vector<std::string> normalize_cli_args(
    int argc, char** argv, std::span<const std::string_view> value_flags);

/// A RunConfig plus the fault injector it may point at.  The injector is
/// heap-allocated so BuiltRun can be moved without invalidating
/// config.faults.
struct BuiltRun {
  RunConfig config;
  std::shared_ptr<robust::FaultInjector> injector;  ///< null when fault-free
  std::string fault_note;  ///< FaultPlan::describe() when engaged, else ""
};

/// Builds the simulation-shaping half of a RunConfig from key=value knobs:
/// machine (benchmarks/sched/fetch/deadlock/iq/...), horizon
/// (warmup/horizon/seed/max_cycles), robustness (verify/hang_cycles/
/// fault_*) and interval=N.  With sweep=N in `kv`, sched/iq are left at
/// their defaults (the sweep grid supplies them per cell).  Caller-specific
/// surfaces -- output paths, checkpointing, progress buses, signal
/// watching, trace capacity -- stay with the caller.  Throws
/// std::invalid_argument on unknown enum values (the caller has already
/// rejected unknown keys).
[[nodiscard]] BuiltRun build_run_config(const KvConfig& kv);

/// Builds the sweep-grid and backend knobs (kinds, IQ sizes, isolation,
/// workers, retries, chaos, cell_timeout_ms) on top of `base`.  Journal
/// path/resume and progress sinks stay with the caller.
[[nodiscard]] SweepRequest build_sweep_request(const KvConfig& kv,
                                               const RunConfig& base,
                                               unsigned thread_count,
                                               unsigned jobs);

}  // namespace msim::sim
