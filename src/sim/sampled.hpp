// Sampled simulation (mode=sampled, docs/SAMPLING.md): SimPoint-style
// phase-guided region sampling over the synthetic traces.
//
// A functional fast pass (smt::Pipeline::run_functional) streams the whole
// run once, warming caches and predictors while carving it into
// fixed-length per-thread instruction regions.  Each region is summarized
// by a quantized phase fingerprint (obs/region.hpp); regions with equal
// fingerprints form a cluster and only one representative per cluster is
// simulated in detail, launched from an in-memory Archive checkpoint taken
// at the region boundary minus a short detailed warm-up.  Region sims run
// in parallel on the shared ThreadPool and are aggregated in fixed region
// order, so the estimate is bit-identical at any jobs count.  A
// statistics reconstitutor scales each representative by its cluster
// weight into whole-run IPC / MPKI / mispredict estimates with a
// dispersion-based confidence band, exported as a `msim.sampled.v1` JSON
// report that tools/check_sampled.py gates against an exact run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/interval.hpp"
#include "sim/run.hpp"

namespace msim::sim {

/// Knobs of the sampled engine (CLI: region=, detail_warmup=, jobs=).
struct SampledConfig {
  /// Region granularity in per-thread instructions.  Smaller regions give
  /// finer phase resolution but more detailed-sim work per cluster.
  std::uint64_t region_length = 2'000;
  /// Detailed instructions (per thread) simulated before each region's
  /// measured window, so the pipeline refills and the threads develop
  /// natural relative skew before measurement.  May exceed region_length
  /// (the checkpoint is simply taken further back).
  std::uint64_t detail_warmup = 1'000;
  /// Detailed pilot run (in per-thread instructions of its fastest thread)
  /// used to estimate relative per-thread commit rates before the
  /// functional pass.  The paper's ICOUNT stop rule is any-thread, so
  /// threads drift apart over a long run; pacing the functional pass by
  /// the pilot's rates keeps sampled regions in the thread-progress mix an
  /// exact run actually visits.  0 = lockstep (all threads equal), which
  /// is only accurate for short or rate-balanced workloads.
  std::uint64_t pilot = 5'000;
  /// Concurrent region simulations; 0 = ThreadPool::default_parallelism().
  /// The estimate is bit-identical at any value.
  unsigned jobs = 1;

  /// Rejects knob combinations the sampled engine does not support
  /// (checkpoint/resume, max_cycles truncation, lifecycle tracing).
  void validate(const RunConfig& base) const;
};

/// One region of the functional profile pass, plus -- for cluster
/// representatives -- the detailed measurements taken from its replay.
struct SampledRegion {
  std::uint64_t index = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t cluster = 0;
  /// This region's per-thread-instruction overlap with the measured window.
  std::uint64_t weight = 0;
  bool detailed = false;
  // Representatives only: the cluster's total weight and the measured
  // detailed region statistics.
  std::uint64_t cluster_weight = 0;
  std::uint64_t cycles = 0;
  std::uint64_t committed = 0;
  std::vector<std::uint64_t> per_thread_committed;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  /// Commit digest of the detailed region sim (detail warm-up + measure),
  /// pinning region behaviour bit-exactly across hosts and job counts.
  std::uint64_t digest = 0;
};

/// Whole-run estimates reconstituted from the weighted representatives.
struct SampledResult {
  double est_ipc = 0.0;
  /// Heuristic 95% confidence band: weighted between-cluster IPC
  /// dispersion over an effective sample size -- a phase-spread indicator,
  /// not a guaranteed bound (see docs/SAMPLING.md).
  double ipc_ci95 = 0.0;
  double est_l1d_mpki = 0.0;
  double est_l2_mpki = 0.0;
  double est_mispredict_rate = 0.0;
  std::vector<double> per_thread_ipc;

  std::uint64_t regions_total = 0;
  std::uint64_t regions_detailed = 0;
  std::uint64_t clusters = 0;
  /// Instructions executed by the functional pass (all threads).
  std::uint64_t functional_instructions = 0;
  /// Instructions committed by the detailed region sims (warm-up + measure).
  std::uint64_t detailed_committed = 0;
  /// Total committed instructions an exact run of the same config would
  /// simulate (warm-up included): the instruction stream the functional
  /// pass carried over the whole span, paced to mirror the exact run's
  /// thread skew.  Numerator of the "effective KIPS" speed metric in
  /// BENCH_sim_speed.json.
  std::uint64_t exact_equivalent_instructions = 0;
  /// FNV-1a over (region index, region digest) of the detailed regions in
  /// region order: one value pinning the whole region selection + replay.
  std::uint64_t sampled_digest = 0;

  std::vector<SampledRegion> regions;
  /// Interval records of the detailed regions only (when the base config
  /// enables interval telemetry), concatenated in region order with
  /// region_id set.
  std::vector<obs::IntervalRecord> intervals;
  std::uint64_t intervals_dropped = 0;
};

/// Runs the sampled engine.  Throws std::invalid_argument for unsupported
/// knob combinations and robust::SimulationAborted -- with a diagnostic
/// bundle naming the failing region -- when a detailed region sim trips the
/// hang watchdog or an invariant check.
SampledResult run_sampled(const RunConfig& base, const SampledConfig& sampled);

/// `msim.sampled.v1` report (see docs/SAMPLING.md for the schema).
void write_sampled_json(std::ostream& os, const RunConfig& base,
                        const SampledConfig& sampled, const SampledResult& result,
                        int indent = 2);

}  // namespace msim::sim
