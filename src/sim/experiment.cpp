#include "sim/experiment.hpp"

#include <algorithm>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace msim::sim {

double BaselineCache::alone_ipc(std::string_view benchmark, std::uint32_t iq_entries) {
  const auto key = std::make_pair(std::string(benchmark), iq_entries);

  std::shared_ptr<Slot> slot;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = done_.find(key); it != done_.end()) return it->second;
    auto& entry = slots_[key];
    if (!entry) {
      entry = std::make_shared<Slot>();
      owner = true;
    }
    slot = entry;
  }

  if (!owner) {
    // Another thread is simulating this key; block on its slot only.
    std::unique_lock<std::mutex> lock(slot->m);
    slot->cv.wait(lock, [&] { return slot->ready || slot->failed; });
    if (slot->failed) {
      throw std::runtime_error("baseline simulation failed for '" + key.first +
                               "': " + slot->error);
    }
    return slot->ipc;
  }

  try {
    RunConfig cfg = base_;
    cfg.benchmarks = {key.first};
    cfg.kind = core::SchedulerKind::kTraditional;
    cfg.iq_entries = iq_entries;
    cfg.seed = derive_stream_seed(base_.seed, "baseline:" + key.first, iq_entries);
    const RunResult result = run_simulation(cfg);
    MSIM_CHECK(result.throughput_ipc > 0.0);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      done_.emplace(key, result.throughput_ipc);
      ++computations_;
    }
    {
      const std::lock_guard<std::mutex> lock(slot->m);
      slot->ipc = result.throughput_ipc;
      slot->ready = true;
    }
    slot->cv.notify_all();
    return result.throughput_ipc;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      slots_.erase(key);  // a later request may retry
    }
    {
      const std::lock_guard<std::mutex> lock(slot->m);
      slot->failed = true;
      // Chain the underlying reason into waiters' rethrown error text.
      try {
        throw;
      } catch (const std::exception& e) {
        slot->error = e.what();
      } catch (...) {
        slot->error = "unknown (non-standard exception)";
      }
    }
    slot->cv.notify_all();
    throw;
  }
}

std::size_t BaselineCache::entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return done_.size();
}

std::uint64_t BaselineCache::computations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return computations_;
}

std::vector<BaselineEntry> BaselineCache::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<BaselineEntry> out;
  out.reserve(done_.size());
  for (const auto& [key, ipc] : done_) {
    out.push_back({key.first, key.second, ipc});
  }
  return out;
}

MixResult run_mix(const trace::WorkloadMix& mix, core::SchedulerKind kind,
                  std::uint32_t iq_entries, const RunConfig& base,
                  BaselineCache& baselines) {
  RunConfig cfg = base;
  cfg.benchmarks.clear();
  for (const std::string_view bench : mix.threads()) {
    cfg.benchmarks.emplace_back(bench);
  }
  cfg.kind = kind;
  cfg.iq_entries = iq_entries;
  // One stream per (mix, iq): independent of scheduler kind so competing
  // schedulers see identical workload randomness, and independent of
  // execution order so parallel sweeps reproduce serial ones bit-for-bit.
  cfg.seed = derive_stream_seed(base.seed, std::string("mix:").append(mix.name),
                                iq_entries);

  MixResult out;
  out.mix_name = mix.name;
  out.raw = run_simulation(cfg);
  out.throughput_ipc = out.raw.throughput_ipc;

  std::vector<double> alone;
  alone.reserve(cfg.benchmarks.size());
  for (const std::string& bench : cfg.benchmarks) {
    alone.push_back(baselines.alone_ipc(bench, iq_entries));
  }
  out.fairness = hmean_weighted_ipc(out.raw.per_thread_ipc, alone);
  return out;
}

namespace {

SweepCell aggregate_cell(core::SchedulerKind kind, std::uint32_t iq,
                         std::vector<MixResult> mixes) {
  SweepCell cell;
  cell.kind = kind;
  cell.iq_entries = iq;
  std::vector<double> ipcs;
  std::vector<double> fairs;
  StreamingStat stall;
  StreamingStat residency;
  // Failed mixes (crash isolation) are excluded from every aggregate; with
  // nothing surviving, the means degrade to 0.
  for (const MixResult& m : mixes) {
    if (!m.ok) continue;
    ipcs.push_back(m.throughput_ipc);
    fairs.push_back(m.fairness);
    stall.add(m.raw.dispatch.all_stall_fraction());
    residency.add(m.raw.iq.mean_residency());
  }
  cell.hmean_ipc = harmonic_mean(ipcs);
  cell.hmean_fairness = harmonic_mean(fairs);
  cell.mean_all_stall_fraction = stall.mean();
  cell.mean_iq_residency = residency.mean();
  cell.mixes = std::move(mixes);
  return cell;
}

std::string describe(core::SchedulerKind kind, std::uint32_t iq,
                     std::string_view mix_name) {
  return std::string(core::scheduler_kind_name(kind)) + " iq=" +
         std::to_string(iq) + " " + std::string(mix_name);
}

}  // namespace

std::vector<SweepCell> run_sweep(const SweepRequest& request, BaselineCache& baselines) {
  MSIM_CHECK(!request.iq_sizes.empty());
  MSIM_CHECK(request.jobs >= 1);
  const auto mixes = trace::mixes_for(request.thread_count);

  // The traditional scheduler anchors every speedup; ensure it is present.
  std::vector<core::SchedulerKind> kinds = request.kinds;
  const bool traditional_requested =
      std::find(kinds.begin(), kinds.end(), core::SchedulerKind::kTraditional) !=
      kinds.end();
  if (!traditional_requested) {
    kinds.insert(kinds.begin(), core::SchedulerKind::kTraditional);
  }

  // Flatten the grid kind-major (request order), then iq, then mix: this
  // fixed enumeration is both the work list and the aggregation order, so
  // results never depend on which worker finishes first.
  struct GridPoint {
    core::SchedulerKind kind;
    std::uint32_t iq;
    const trace::WorkloadMix* mix;
  };
  std::vector<GridPoint> grid;
  grid.reserve(kinds.size() * request.iq_sizes.size() * mixes.size());
  for (const core::SchedulerKind kind : kinds) {
    for (const std::uint32_t iq : request.iq_sizes) {
      for (const trace::WorkloadMix& mix : mixes) {
        grid.push_back({kind, iq, &mix});
      }
    }
  }

  // Crash isolation: while the grid executes, MSIM_CHECK failures throw
  // msim::CheckError instead of aborting the process.  The handler slot is
  // process-wide, so it is installed once around the whole grid (including
  // the serial path), never per worker.
  std::optional<ScopedCheckThrow> check_guard;
  if (request.isolate_failures) check_guard.emplace();

  auto run_cell = [&](const GridPoint& p) -> MixResult {
    if (!request.isolate_failures) {
      return run_mix(*p.mix, p.kind, p.iq, request.base, baselines);
    }
    std::string last_error = "unknown failure";
    for (unsigned attempt = 1; attempt <= request.retries + 1; ++attempt) {
      try {
        MixResult r = run_mix(*p.mix, p.kind, p.iq, request.base, baselines);
        r.attempts = attempt;
        return r;
      } catch (const std::exception& e) {
        last_error = e.what();
      }
    }
    MixResult failed;
    failed.mix_name = p.mix->name;
    failed.ok = false;
    failed.error = last_error;
    failed.attempts = request.retries + 1;
    return failed;
  };

  std::vector<MixResult> results(grid.size());
  if (request.jobs == 1) {
    // Serial path: today's behavior, including progress notes before each run.
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const GridPoint& p = grid[i];
      if (request.progress) {
        request.progress(describe(p.kind, p.iq, p.mix->name));
      }
      results[i] = run_cell(p);
    }
  } else {
    ThreadPool pool(request.jobs);
    std::mutex progress_mu;
    std::vector<std::future<void>> pending;
    pending.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      pending.push_back(pool.submit([&, i] {
        const GridPoint& p = grid[i];
        results[i] = run_cell(p);
        if (request.progress) {
          const std::lock_guard<std::mutex> lock(progress_mu);
          request.progress(describe(p.kind, p.iq, p.mix->name) +
                           (results[i].ok ? "" : " FAILED"));
        }
      }));
    }
    for (std::future<void>& f : pending) f.get();
  }
  check_guard.reset();

  std::vector<SweepCell> cells;
  cells.reserve(kinds.size() * request.iq_sizes.size());
  std::size_t next = 0;
  for (const core::SchedulerKind kind : kinds) {
    for (const std::uint32_t iq : request.iq_sizes) {
      std::vector<MixResult> cell_results(
          std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>(next)),
          std::make_move_iterator(results.begin() +
                                  static_cast<std::ptrdiff_t>(next + mixes.size())));
      next += mixes.size();
      cells.push_back(aggregate_cell(kind, iq, std::move(cell_results)));
    }
  }

  // Compute per-mix speedups against traditional at the same capacity.
  std::map<std::uint32_t, const SweepCell*> trad_by_iq;
  for (const SweepCell& cell : cells) {
    if (cell.kind == core::SchedulerKind::kTraditional) {
      trad_by_iq[cell.iq_entries] = &cell;
    }
  }
  for (SweepCell& cell : cells) {
    const SweepCell* trad = trad_by_iq.at(cell.iq_entries);
    std::vector<double> ipc_ratios;
    std::vector<double> fair_ratios;
    MSIM_CHECK(trad->mixes.size() == cell.mixes.size());
    for (std::size_t i = 0; i < cell.mixes.size(); ++i) {
      MSIM_CHECK(trad->mixes[i].mix_name == cell.mixes[i].mix_name);
      // A speedup is a paired comparison: it exists only when both sides of
      // the pair survived.  Failed mixes drop out of the mean.
      if (!trad->mixes[i].ok || !cell.mixes[i].ok) continue;
      ipc_ratios.push_back(cell.mixes[i].throughput_ipc /
                           trad->mixes[i].throughput_ipc);
      fair_ratios.push_back(cell.mixes[i].fairness / trad->mixes[i].fairness);
    }
    cell.ipc_speedup_vs_trad = harmonic_mean(ipc_ratios);
    cell.fairness_gain_vs_trad = harmonic_mean(fair_ratios);
  }

  if (!traditional_requested) {
    std::erase_if(cells, [](const SweepCell& c) {
      return c.kind == core::SchedulerKind::kTraditional;
    });
  }
  return cells;
}

const SweepCell& cell_for(const std::vector<SweepCell>& cells,
                          core::SchedulerKind kind, std::uint32_t iq_entries) {
  for (const SweepCell& cell : cells) {
    if (cell.kind == kind && cell.iq_entries == iq_entries) return cell;
  }
  throw std::invalid_argument("no sweep cell for requested (kind, iq)");
}

std::vector<FailedCell> sweep_failures(const std::vector<SweepCell>& cells) {
  std::vector<FailedCell> failures;
  for (const SweepCell& cell : cells) {
    for (const MixResult& m : cell.mixes) {
      if (m.ok) continue;
      failures.push_back(
          {cell.kind, cell.iq_entries, m.mix_name, m.error, m.attempts});
    }
  }
  return failures;
}

}  // namespace msim::sim
