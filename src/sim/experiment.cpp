#include "sim/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace msim::sim {

double BaselineCache::alone_ipc(std::string_view benchmark, std::uint32_t iq_entries) {
  const auto key = std::make_pair(std::string(benchmark), iq_entries);
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  RunConfig cfg = base_;
  cfg.benchmarks = {key.first};
  cfg.kind = core::SchedulerKind::kTraditional;
  cfg.iq_entries = iq_entries;
  const RunResult result = run_simulation(cfg);
  MSIM_CHECK(result.throughput_ipc > 0.0);
  cache_.emplace(key, result.throughput_ipc);
  return result.throughput_ipc;
}

MixResult run_mix(const trace::WorkloadMix& mix, core::SchedulerKind kind,
                  std::uint32_t iq_entries, const RunConfig& base,
                  BaselineCache& baselines) {
  RunConfig cfg = base;
  cfg.benchmarks.clear();
  for (const std::string_view bench : mix.threads()) {
    cfg.benchmarks.emplace_back(bench);
  }
  cfg.kind = kind;
  cfg.iq_entries = iq_entries;

  MixResult out;
  out.mix_name = mix.name;
  out.raw = run_simulation(cfg);
  out.throughput_ipc = out.raw.throughput_ipc;

  std::vector<double> alone;
  alone.reserve(cfg.benchmarks.size());
  for (const std::string& bench : cfg.benchmarks) {
    alone.push_back(baselines.alone_ipc(bench, iq_entries));
  }
  out.fairness = hmean_weighted_ipc(out.raw.per_thread_ipc, alone);
  return out;
}

namespace {

SweepCell aggregate_cell(core::SchedulerKind kind, std::uint32_t iq,
                         std::vector<MixResult> mixes) {
  SweepCell cell;
  cell.kind = kind;
  cell.iq_entries = iq;
  std::vector<double> ipcs;
  std::vector<double> fairs;
  StreamingStat stall;
  StreamingStat residency;
  for (const MixResult& m : mixes) {
    ipcs.push_back(m.throughput_ipc);
    fairs.push_back(m.fairness);
    stall.add(m.raw.dispatch.all_stall_fraction());
    residency.add(m.raw.iq.mean_residency());
  }
  cell.hmean_ipc = harmonic_mean(ipcs);
  cell.hmean_fairness = harmonic_mean(fairs);
  cell.mean_all_stall_fraction = stall.mean();
  cell.mean_iq_residency = residency.mean();
  cell.mixes = std::move(mixes);
  return cell;
}

}  // namespace

std::vector<SweepCell> run_sweep(const SweepRequest& request, BaselineCache& baselines) {
  MSIM_CHECK(!request.iq_sizes.empty());
  const auto mixes = trace::mixes_for(request.thread_count);
  auto note = [&](const std::string& msg) {
    if (request.progress) request.progress(msg);
  };

  // The traditional scheduler anchors every speedup; run it first.
  std::vector<core::SchedulerKind> kinds = request.kinds;
  const bool traditional_requested =
      std::find(kinds.begin(), kinds.end(), core::SchedulerKind::kTraditional) !=
      kinds.end();
  if (!traditional_requested) {
    kinds.insert(kinds.begin(), core::SchedulerKind::kTraditional);
  }

  // kind -> iq -> cell
  std::vector<SweepCell> cells;
  std::map<std::uint32_t, const SweepCell*> trad_by_iq;
  for (const core::SchedulerKind kind : kinds) {
    for (const std::uint32_t iq : request.iq_sizes) {
      std::vector<MixResult> results;
      results.reserve(mixes.size());
      for (const trace::WorkloadMix& mix : mixes) {
        note(std::string(core::scheduler_kind_name(kind)) + " iq=" +
             std::to_string(iq) + " " + std::string(mix.name));
        results.push_back(run_mix(mix, kind, iq, request.base, baselines));
      }
      cells.push_back(aggregate_cell(kind, iq, std::move(results)));
    }
  }

  // Compute per-mix speedups against traditional at the same capacity.
  for (const SweepCell& cell : cells) {
    if (cell.kind == core::SchedulerKind::kTraditional) {
      trad_by_iq[cell.iq_entries] = &cell;
    }
  }
  for (SweepCell& cell : cells) {
    const SweepCell* trad = trad_by_iq.at(cell.iq_entries);
    std::vector<double> ipc_ratios;
    std::vector<double> fair_ratios;
    MSIM_CHECK(trad->mixes.size() == cell.mixes.size());
    for (std::size_t i = 0; i < cell.mixes.size(); ++i) {
      MSIM_CHECK(trad->mixes[i].mix_name == cell.mixes[i].mix_name);
      ipc_ratios.push_back(cell.mixes[i].throughput_ipc /
                           trad->mixes[i].throughput_ipc);
      fair_ratios.push_back(cell.mixes[i].fairness / trad->mixes[i].fairness);
    }
    cell.ipc_speedup_vs_trad = harmonic_mean(ipc_ratios);
    cell.fairness_gain_vs_trad = harmonic_mean(fair_ratios);
  }

  if (!traditional_requested) {
    std::erase_if(cells, [](const SweepCell& c) {
      return c.kind == core::SchedulerKind::kTraditional;
    });
  }
  return cells;
}

const SweepCell& cell_for(const std::vector<SweepCell>& cells,
                          core::SchedulerKind kind, std::uint32_t iq_entries) {
  for (const SweepCell& cell : cells) {
    if (cell.kind == kind && cell.iq_entries == iq_entries) return cell;
  }
  throw std::invalid_argument("no sweep cell for requested (kind, iq)");
}

}  // namespace msim::sim
