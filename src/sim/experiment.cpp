#include "sim/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <filesystem>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "common/archive.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "persist/journal.hpp"
#include "persist/signal.hpp"
#include "robust/supervisor.hpp"

namespace msim::sim {

double BaselineCache::alone_ipc(std::string_view benchmark, std::uint32_t iq_entries) {
  const auto key = std::make_pair(std::string(benchmark), iq_entries);

  std::shared_ptr<Slot> slot;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = done_.find(key); it != done_.end()) return it->second;
    auto& entry = slots_[key];
    if (!entry) {
      entry = std::make_shared<Slot>();
      owner = true;
    }
    slot = entry;
  }

  if (!owner) {
    // Another thread is simulating this key; block on its slot only.
    std::unique_lock<std::mutex> lock(slot->m);
    slot->cv.wait(lock, [&] { return slot->ready || slot->failed; });
    if (slot->failed) {
      throw std::runtime_error("baseline simulation failed for '" + key.first +
                               "': " + slot->error);
    }
    return slot->ipc;
  }

  try {
    RunConfig cfg = base_;
    cfg.benchmarks = {key.first};
    cfg.kind = core::SchedulerKind::kTraditional;
    cfg.iq_entries = iq_entries;
    cfg.seed = derive_stream_seed(base_.seed, "baseline:" + key.first, iq_entries);
    const RunResult result = run_simulation(cfg);
    MSIM_CHECK(result.throughput_ipc > 0.0);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      done_.emplace(key, result.throughput_ipc);
      ++computations_;
    }
    {
      const std::lock_guard<std::mutex> lock(slot->m);
      slot->ipc = result.throughput_ipc;
      slot->ready = true;
    }
    slot->cv.notify_all();
    return result.throughput_ipc;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      slots_.erase(key);  // a later request may retry
    }
    {
      const std::lock_guard<std::mutex> lock(slot->m);
      slot->failed = true;
      // Chain the underlying reason into waiters' rethrown error text.
      try {
        throw;
      } catch (const std::exception& e) {
        slot->error = e.what();
      } catch (...) {
        slot->error = "unknown (non-standard exception)";
      }
    }
    slot->cv.notify_all();
    throw;
  }
}

std::size_t BaselineCache::entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return done_.size();
}

std::uint64_t BaselineCache::computations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return computations_;
}

std::vector<BaselineEntry> BaselineCache::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<BaselineEntry> out;
  out.reserve(done_.size());
  for (const auto& [key, ipc] : done_) {
    out.push_back({key.first, key.second, ipc});
  }
  return out;
}

MixResult run_mix(const trace::WorkloadMix& mix, core::SchedulerKind kind,
                  std::uint32_t iq_entries, const RunConfig& base,
                  BaselineCache& baselines) {
  RunConfig cfg = base;
  cfg.benchmarks.clear();
  for (const std::string_view bench : mix.threads()) {
    cfg.benchmarks.emplace_back(bench);
  }
  cfg.kind = kind;
  cfg.iq_entries = iq_entries;
  // One stream per (mix, iq): independent of scheduler kind so competing
  // schedulers see identical workload randomness, and independent of
  // execution order so parallel sweeps reproduce serial ones bit-for-bit.
  cfg.seed = derive_stream_seed(base.seed, std::string("mix:").append(mix.name),
                                iq_entries);

  MixResult out;
  out.mix_name = mix.name;
  out.raw = run_simulation(cfg);
  out.throughput_ipc = out.raw.throughput_ipc;

  std::vector<double> alone;
  alone.reserve(cfg.benchmarks.size());
  for (const std::string& bench : cfg.benchmarks) {
    alone.push_back(baselines.alone_ipc(bench, iq_entries));
  }
  out.fairness = hmean_weighted_ipc(out.raw.per_thread_ipc, alone);
  return out;
}

namespace {

// ---- journal payload codec -------------------------------------------------
//
// A journaled cell must replay byte-identically into the sweep JSON and the
// aggregates, so the codec covers the complete MixResult — every RunResult
// field, not just the ones today's reports read.

void io_cache_stats(persist::Archive& ar, mem::CacheStats& s) {
  ar.io(s.accesses);
  ar.io(s.misses);
  ar.io(s.coalesced_misses);
  ar.io(s.mshr_stall_cycles);
  ar.io(s.dirty_evictions);
}

void io_run_result(persist::Archive& ar, RunResult& r) {
  ar.section("run_result");
  ar.io(r.cycles);
  ar.io(r.per_thread_ipc);
  ar.io(r.per_thread_committed);
  ar.io(r.throughput_ipc);
  ar.io(r.commit_digest);

  core::DispatchStats& d = r.dispatch;
  ar.io(d.cycles);
  ar.io(d.dispatched);
  for (std::uint64_t& v : d.dispatched_by_nonready) ar.io(v);
  ar.io(d.no_dispatch_cycles);
  ar.io(d.all_threads_ndi_stall_cycles);
  ar.io(d.ndi_blocked_thread_cycles);
  ar.io(d.iq_full_thread_cycles);
  ar.io(d.behind_ndi_examined);
  ar.io(d.behind_ndi_hdis);
  ar.io(d.ooo_dispatches);
  ar.io(d.ooo_dispatches_dependent);
  ar.io(d.filtered_suppressed);
  ar.io(d.dab_inserts);
  ar.io(d.dab_issues);
  ar.io(d.watchdog_flushes);
  ar.io(d.fault_forced_ndis);
  ar.io(d.fault_iq_denials);
  ar.io(d.fault_dropped_dispatches);

  core::IqStats& q = r.iq;
  ar.io(q.dispatched);
  ar.io(q.issued);
  ar.io(q.broadcasts);
  ar.io(q.wakeups);
  ar.io(q.comparator_ops);
  ar.io(q.occupancy_integral);
  ar.io(q.occupancy_samples);
  if (ar.saving()) {
    q.residency.save_state(ar);
  } else {
    q.residency.load_state(ar);
  }
  ar.io(r.iq_mean_occupancy);

  io_cache_stats(ar, r.memory.l1i);
  io_cache_stats(ar, r.memory.l1d);
  io_cache_stats(ar, r.memory.l2);
  ar.io(r.memory.memory_accesses);

  ar.io(r.bpred.branches);
  ar.io(r.bpred.mispredicts);

  smt::PipelineStats& p = r.pipeline;
  ar.io(p.issued);
  ar.io(p.load_issue_blocked);
  ar.io(p.fetch_icache_stall_cycles);
  ar.io(p.watchdog_flushed_instructions);
  ar.io(p.fetch_l2_gated);
  ar.io(p.policy_flushes);
  ar.io(p.policy_flushed_instructions);
  ar.io(p.wrong_path_fetched);
  ar.io(p.wrong_path_issued);
  ar.io(p.wrong_path_squashes);
  ar.io(p.fault_commit_blocked_cycles);
  ar.io(p.fault_rob_denials);
  ar.io(p.fault_lsq_denials);
  ar.io(p.fault_extra_latency_cycles);

  ar.io(r.truncated);
  ar.io_sequence(r.metrics, [](persist::Archive& a, obs::MetricSnapshot& m) {
    a.io(m.name);
    a.io(m.kind);
    a.io(m.value);
    a.io(m.events);
    a.io(m.opportunities);
    a.io(m.count);
    a.io(m.min);
    a.io(m.max);
    a.io(m.stddev);
    a.io(m.p50);
    a.io(m.p90);
    a.io(m.p99);
  });
  ar.io_sequence(r.trace, [](persist::Archive& a, obs::TraceEvent& e) {
    a.io(e.cycle);
    a.io(e.seq);
    a.io(e.tid);
    a.io(e.stage);
    a.io(e.flags);
  });
  ar.io(r.trace_dropped);
  ar.io_sequence(r.intervals, obs::io_interval_record);
  ar.io(r.intervals_dropped);
}

void io_mix_result(persist::Archive& ar, MixResult& m) {
  ar.section("mix_result");
  ar.io(m.mix_name);
  ar.io(m.throughput_ipc);
  ar.io(m.fairness);
  ar.io(m.ok);
  ar.io(m.error);
  ar.io(m.attempts);
  ar.io(m.diag);
  io_run_result(ar, m.raw);
}

std::vector<std::uint8_t> encode_mix_result(const MixResult& m) {
  persist::Archive ar = persist::Archive::saver();
  io_mix_result(ar, const_cast<MixResult&>(m));
  return ar.bytes();
}

MixResult decode_mix_result(const std::vector<std::uint8_t>& payload) {
  persist::Archive ar = persist::Archive::loader(payload);
  MixResult m;
  io_mix_result(ar, m);
  ar.expect_end();
  return m;
}

/// Hash of everything that defines the sweep's grid and its cells' inputs.
/// Deliberately excludes jobs / progress / isolation: those change how the
/// sweep executes, never what a completed cell contains, and a journal must
/// resume at any job count.
std::uint64_t sweep_fingerprint(const SweepRequest& request) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(request.base.fingerprint());
  mix(request.thread_count);
  mix(request.kinds.size());
  for (const core::SchedulerKind kind : request.kinds) {
    mix(static_cast<std::uint64_t>(kind));
  }
  mix(request.iq_sizes.size());
  for (const std::uint32_t iq : request.iq_sizes) mix(iq);
  return h;
}

SweepCell aggregate_cell(core::SchedulerKind kind, std::uint32_t iq,
                         std::vector<MixResult> mixes) {
  SweepCell cell;
  cell.kind = kind;
  cell.iq_entries = iq;
  std::vector<double> ipcs;
  std::vector<double> fairs;
  StreamingStat stall;
  StreamingStat residency;
  // Failed mixes (crash isolation) are excluded from every aggregate; with
  // nothing surviving, the means degrade to 0.
  for (const MixResult& m : mixes) {
    if (!m.ok) continue;
    ipcs.push_back(m.throughput_ipc);
    fairs.push_back(m.fairness);
    stall.add(m.raw.dispatch.all_stall_fraction());
    residency.add(m.raw.iq.mean_residency());
  }
  cell.hmean_ipc = harmonic_mean(ipcs);
  cell.hmean_fairness = harmonic_mean(fairs);
  cell.mean_all_stall_fraction = stall.mean();
  cell.mean_iq_residency = residency.mean();
  cell.mixes = std::move(mixes);
  return cell;
}

std::string describe(core::SchedulerKind kind, std::uint32_t iq,
                     std::string_view mix_name) {
  return std::string(core::scheduler_kind_name(kind)) + " iq=" +
         std::to_string(iq) + " " + std::string(mix_name);
}

}  // namespace

std::vector<SweepCell> run_sweep(const SweepRequest& request, BaselineCache& baselines) {
  MSIM_CHECK(!request.iq_sizes.empty());
  MSIM_CHECK(request.jobs >= 1);
  if (request.isolation == SweepIsolation::kProcess) {
    if (!request.isolate_failures) {
      throw std::invalid_argument(
          "isolation=process requires isolate (the supervisor degrades worker "
          "deaths into per-cell failures, which only partial results can "
          "report)");
    }
  } else {
    if (request.workers != 0) {
      throw std::invalid_argument("workers= requires isolation=process");
    }
    if (request.cell_timeout_ms != 0) {
      throw std::invalid_argument("cell_timeout_ms= requires isolation=process");
    }
    if (!request.chaos.empty()) {
      throw std::invalid_argument("chaos= requires isolation=process");
    }
  }
  const auto mixes = trace::mixes_for(request.thread_count);

  // The traditional scheduler anchors every speedup; ensure it is present.
  std::vector<core::SchedulerKind> kinds = request.kinds;
  const bool traditional_requested =
      std::find(kinds.begin(), kinds.end(), core::SchedulerKind::kTraditional) !=
      kinds.end();
  if (!traditional_requested) {
    kinds.insert(kinds.begin(), core::SchedulerKind::kTraditional);
  }

  // Flatten the grid kind-major (request order), then iq, then mix: this
  // fixed enumeration is both the work list and the aggregation order, so
  // results never depend on which worker finishes first.
  struct GridPoint {
    core::SchedulerKind kind;
    std::uint32_t iq;
    const trace::WorkloadMix* mix;
  };
  std::vector<GridPoint> grid;
  grid.reserve(kinds.size() * request.iq_sizes.size() * mixes.size());
  for (const core::SchedulerKind kind : kinds) {
    for (const std::uint32_t iq : request.iq_sizes) {
      for (const trace::WorkloadMix& mix : mixes) {
        grid.push_back({kind, iq, &mix});
      }
    }
  }

  // Crash isolation: while the grid executes, MSIM_CHECK failures throw
  // msim::CheckError instead of aborting the process.  The handler slot is
  // process-wide, so it is installed once around the whole grid (including
  // the serial path), never per worker.
  std::optional<ScopedCheckThrow> check_guard;
  if (request.isolate_failures) check_guard.emplace();

  const std::uint64_t fingerprint = sweep_fingerprint(request);

  // Crash recovery (thread backend): the journal replays completed cells
  // (resume) and durably records each newly completed cell before the sweep
  // moves on.  The process backend manages per-worker journal shards
  // instead (below).
  std::optional<persist::SweepJournal> journal;
  if (request.isolation == SweepIsolation::kThread &&
      !request.journal_path.empty()) {
    journal.emplace(request.journal_path, fingerprint, request.resume);
    if (journal->loaded_entries() != 0 && request.progress) {
      request.progress("journal: replaying " +
                       std::to_string(journal->loaded_entries()) +
                       " completed cell(s)");
    }
  }
  std::mutex journal_mu;

  // Structured progress: sweep/cell milestones with a completion counter.
  // Sinks see the true completion order (nondeterministic under jobs > 1);
  // the simulated results stay bit-identical regardless.
  obs::ProgressBus* bus = request.progress_bus;
  const std::string sweep_label = std::to_string(request.thread_count) + "T sweep";
  std::atomic<std::uint64_t> done{0};
  if (bus) {
    obs::ProgressEvent ev(obs::ProgressKind::kSweepStart);
    ev.label = sweep_label;
    ev.total = grid.size();
    bus->publish(ev);
  }

  auto run_cell = [&](const GridPoint& p) -> MixResult {
    if (!request.isolate_failures) {
      return run_mix(*p.mix, p.kind, p.iq, request.base, baselines);
    }
    std::string last_error = "unknown failure";
    for (unsigned attempt = 1; attempt <= request.retries + 1; ++attempt) {
      try {
        MixResult r = run_mix(*p.mix, p.kind, p.iq, request.base, baselines);
        r.attempts = attempt;
        return r;
      } catch (const persist::Interrupted&) {
        // An interrupt is a request to stop, not a cell failure: never
        // retried, never recorded — the cell reruns on resume.
        throw;
      } catch (const persist::Cancelled&) {
        // Same contract for per-job cancellation (the serve daemon): the
        // sweep stops after the journal recorded every completed cell.
        throw;
      } catch (const std::exception& e) {
        last_error = e.what();
        if (bus && attempt <= request.retries) {
          obs::ProgressEvent ev(obs::ProgressKind::kCellRetry);
          ev.label = describe(p.kind, p.iq, p.mix->name);
          ev.ok = false;
          ev.detail = last_error;
          bus->publish(ev);
        }
      }
    }
    MixResult failed;
    failed.mix_name = p.mix->name;
    failed.ok = false;
    failed.error = last_error;
    failed.attempts = request.retries + 1;
    return failed;
  };

  auto run_or_replay_cell = [&](const GridPoint& p) -> MixResult {
    const std::string key = describe(p.kind, p.iq, p.mix->name);
    auto finish = [&](const MixResult& r, std::string_view how) {
      const std::uint64_t completed = done.fetch_add(1) + 1;
      if (bus) {
        obs::ProgressEvent ev(obs::ProgressKind::kCellFinish);
        ev.label = key;
        ev.done = completed;
        ev.total = grid.size();
        ev.ok = r.ok;
        ev.detail = std::string(how);
        bus->publish(ev);
      }
    };
    if (journal) {
      // find() only reads entries loaded at construction; appends never
      // mutate that map, so no lock is needed here.
      if (const std::vector<std::uint8_t>* payload = journal->find(key)) {
        MixResult m = decode_mix_result(*payload);
        if (m.mix_name != p.mix->name) {
          throw persist::PersistError(
              "journal entry '" + key + "' replays mix '" + m.mix_name +
              "'; the journal does not match this sweep (docs/CHECKPOINT.md)");
        }
        finish(m, "journal replay");
        return m;
      }
    }
    if (bus) {
      obs::ProgressEvent ev(obs::ProgressKind::kCellStart);
      ev.label = key;
      bus->publish(ev);
    }
    std::optional<obs::ScopeTimer> cell_timer;
    if (request.timers) cell_timer.emplace(*request.timers, "cell:" + key);
    MixResult r = run_cell(p);
    cell_timer.reset();
    // Failed cells are not recorded: a resume retries them from scratch.
    if (journal && r.ok) {
      const std::vector<std::uint8_t> payload = encode_mix_result(r);
      const std::lock_guard<std::mutex> lock(journal_mu);
      journal->append(key, payload);
    }
    finish(r, "");
    return r;
  };

  std::vector<MixResult> results(grid.size());
  if (request.isolation == SweepIsolation::kProcess) {
    const unsigned workers = request.workers == 0 ? request.jobs : request.workers;
    robust::ChaosPlan chaos;
    if (!request.chaos.empty()) {
      chaos = robust::ChaosPlan::parse(request.chaos);
      for (const robust::WorkerFault& fault : chaos.faults) {
        if (fault.cell >= grid.size()) {
          throw std::invalid_argument(
              "chaos: cell " + std::to_string(fault.cell) +
              " is outside this sweep's grid of " + std::to_string(grid.size()) +
              " cells");
        }
      }
    }

    auto key_of = [&](std::size_t i) {
      return describe(grid[i].kind, grid[i].iq, grid[i].mix->name);
    };

    // Completed work = the merged journal plus any worker shards that
    // survived a killed supervisor.  Shards are probed by existence, never
    // opened for appending: slot files must not spring into being here.
    std::map<std::string, std::vector<std::uint8_t>> completed;
    if (!request.journal_path.empty()) {
      if (request.resume) {
        completed =
            persist::SweepJournal::read_completed(request.journal_path, fingerprint);
        for (unsigned k = 0;; ++k) {
          const std::string shard =
              robust::SweepSupervisor::shard_path(request.journal_path, k);
          if (!std::filesystem::exists(shard)) break;
          for (auto& [key, payload] :
               persist::SweepJournal::read_completed(shard, fingerprint)) {
            completed.emplace(key, std::move(payload));
          }
        }
      } else {
        // A fresh sweep must not replay stale state from a previous one.
        (void)std::filesystem::remove(request.journal_path);
        for (unsigned k = 0;; ++k) {
          if (!std::filesystem::remove(
                  robust::SweepSupervisor::shard_path(request.journal_path, k))) {
            break;
          }
        }
      }
    }

    std::vector<std::size_t> completed_indices;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto it = completed.find(key_of(i));
      if (it == completed.end()) continue;
      MixResult m = decode_mix_result(it->second);
      if (m.mix_name != grid[i].mix->name) {
        throw persist::PersistError(
            "journal entry '" + it->first + "' replays mix '" + m.mix_name +
            "'; the journal does not match this sweep (docs/CHECKPOINT.md)");
      }
      results[i] = std::move(m);
      completed_indices.push_back(i);
      const std::uint64_t completed_count = done.fetch_add(1) + 1;
      if (bus) {
        obs::ProgressEvent ev(obs::ProgressKind::kCellFinish);
        ev.label = it->first;
        ev.done = completed_count;
        ev.total = grid.size();
        ev.detail = "journal replay";
        bus->publish(ev);
      }
    }
    if (!completed_indices.empty() && request.progress) {
      request.progress("journal: replaying " +
                       std::to_string(completed_indices.size()) +
                       " completed cell(s)");
    }

    // Workers inherit this config at fork: no progress bus (its sinks and
    // streams belong to the parent) and no cooperative signal handling (the
    // supervisor owns shutdown; forked children reset to SIG_DFL).
    RunConfig worker_base = request.base;
    worker_base.progress_bus = nullptr;
    worker_base.watch_signals = false;
    // The cancel flag lives in the parent's memory: a forked worker's copy
    // is frozen at fork time, so cancellation is the supervisor's job (it
    // polls the flag and SIGKILLs the workers).
    worker_base.cancel = nullptr;
    auto cell_fn = [&](std::size_t i) -> robust::CellOutcome {
      const GridPoint& p = grid[i];
      MixResult r;
      std::string last_error = "unknown failure";
      bool finished = false;
      for (unsigned attempt = 1; attempt <= request.retries + 1 && !finished;
           ++attempt) {
        try {
          r = run_mix(*p.mix, p.kind, p.iq, worker_base, baselines);
          r.attempts = attempt;
          finished = true;
        } catch (const std::exception& e) {
          last_error = e.what();
        }
      }
      if (!finished) {
        r = MixResult{};
        r.mix_name = p.mix->name;
        r.ok = false;
        r.error = last_error;
        r.attempts = request.retries + 1;
      }
      robust::CellOutcome out;
      out.ok = r.ok;
      out.error = r.error;
      out.attempts = r.attempts;
      out.payload = encode_mix_result(r);
      return out;
    };

    robust::SupervisorConfig sc;
    sc.total_cells = grid.size();
    sc.workers = workers;
    sc.retries = request.retries;
    sc.cell_timeout_ms = request.cell_timeout_ms;
    sc.tuning.heartbeat_timeout_ms = request.worker_heartbeat_timeout_ms;
    sc.chaos = std::move(chaos);
    sc.journal_path = request.journal_path;
    sc.journal_fingerprint = fingerprint;
    sc.completed = completed_indices;
    sc.watch_signals = request.base.watch_signals;
    sc.cancel = request.base.cancel;
    sc.progress_bus = bus;
    sc.cell_label = key_of;
    robust::SweepSupervisor supervisor(std::move(sc));
    robust::SupervisorReport report = supervisor.run(cell_fn);

    for (auto& [index, outcome] : report.outcomes) {
      if (!outcome.payload.empty()) {
        results[index] = decode_mix_result(outcome.payload);
      } else {
        results[index].mix_name = grid[index].mix->name;
        results[index].ok = false;
        results[index].error = outcome.error;
        results[index].attempts = outcome.attempts;
      }
    }
    for (const robust::SupervisorFailure& failure : report.process_failures) {
      MixResult m;
      m.mix_name = grid[failure.cell].mix->name;
      m.ok = false;
      m.error = failure.error;
      m.attempts = failure.attempts;
      m.diag = failure.diag;
      results[failure.cell] = std::move(m);
    }
    done.store(completed_indices.size() + report.outcomes.size() +
               report.process_failures.size());

    // Merge the shards into the main journal in fixed grid order, reusing
    // the exact payload bytes the workers journaled, then retire the
    // shards.  A crash before the merge leaves the shards in place; a
    // resume unions them right back in.
    if (!request.journal_path.empty()) {
      std::vector<std::pair<std::string, std::vector<std::uint8_t>>> merged;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!results[i].ok) continue;
        const std::string key = key_of(i);
        if (const auto cit = completed.find(key); cit != completed.end()) {
          merged.emplace_back(key, std::move(cit->second));
        } else if (const auto oit = report.outcomes.find(i);
                   oit != report.outcomes.end() && oit->second.ok) {
          merged.emplace_back(key, std::move(oit->second.payload));
        }
      }
      persist::SweepJournal::write_merged(request.journal_path, fingerprint,
                                          merged);
      for (unsigned k = 0;; ++k) {
        if (!std::filesystem::remove(
                robust::SweepSupervisor::shard_path(request.journal_path, k))) {
          break;
        }
      }
    }
  } else if (request.jobs == 1) {
    // Serial path: today's behavior, including progress notes before each run.
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const GridPoint& p = grid[i];
      if (request.progress) {
        request.progress(describe(p.kind, p.iq, p.mix->name));
      }
      results[i] = run_or_replay_cell(p);
    }
  } else {
    ThreadPool pool(request.jobs);
    std::mutex progress_mu;
    std::vector<std::future<void>> pending;
    pending.reserve(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      pending.push_back(pool.submit([&, i] {
        const GridPoint& p = grid[i];
        results[i] = run_or_replay_cell(p);
        if (request.progress) {
          const std::lock_guard<std::mutex> lock(progress_mu);
          request.progress(describe(p.kind, p.iq, p.mix->name) +
                           (results[i].ok ? "" : " FAILED"));
        }
      }));
    }
    // Drain every worker before rethrowing anything, so completed cells all
    // reach the journal; an interrupt outranks other failures because it is
    // the reason the caller is exiting.
    std::exception_ptr interrupted;
    std::exception_ptr cancelled;
    std::exception_ptr first_error;
    for (std::future<void>& f : pending) {
      try {
        f.get();
      } catch (const persist::Interrupted&) {
        if (!interrupted) interrupted = std::current_exception();
      } catch (const persist::Cancelled&) {
        if (!cancelled) cancelled = std::current_exception();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (interrupted) std::rethrow_exception(interrupted);
    if (cancelled) std::rethrow_exception(cancelled);
    if (first_error) std::rethrow_exception(first_error);
  }
  check_guard.reset();
  if (bus) {
    obs::ProgressEvent ev(obs::ProgressKind::kSweepFinish);
    ev.label = sweep_label;
    ev.done = done.load();
    ev.total = grid.size();
    bus->publish(ev);
  }

  std::vector<SweepCell> cells;
  cells.reserve(kinds.size() * request.iq_sizes.size());
  std::size_t next = 0;
  for (const core::SchedulerKind kind : kinds) {
    for (const std::uint32_t iq : request.iq_sizes) {
      std::vector<MixResult> cell_results(
          std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>(next)),
          std::make_move_iterator(results.begin() +
                                  static_cast<std::ptrdiff_t>(next + mixes.size())));
      next += mixes.size();
      cells.push_back(aggregate_cell(kind, iq, std::move(cell_results)));
    }
  }

  // Compute per-mix speedups against traditional at the same capacity.
  std::map<std::uint32_t, const SweepCell*> trad_by_iq;
  for (const SweepCell& cell : cells) {
    if (cell.kind == core::SchedulerKind::kTraditional) {
      trad_by_iq[cell.iq_entries] = &cell;
    }
  }
  for (SweepCell& cell : cells) {
    const SweepCell* trad = trad_by_iq.at(cell.iq_entries);
    std::vector<double> ipc_ratios;
    std::vector<double> fair_ratios;
    MSIM_CHECK(trad->mixes.size() == cell.mixes.size());
    for (std::size_t i = 0; i < cell.mixes.size(); ++i) {
      MSIM_CHECK(trad->mixes[i].mix_name == cell.mixes[i].mix_name);
      // A speedup is a paired comparison: it exists only when both sides of
      // the pair survived.  Failed mixes drop out of the mean.
      if (!trad->mixes[i].ok || !cell.mixes[i].ok) continue;
      ipc_ratios.push_back(cell.mixes[i].throughput_ipc /
                           trad->mixes[i].throughput_ipc);
      fair_ratios.push_back(cell.mixes[i].fairness / trad->mixes[i].fairness);
    }
    cell.ipc_speedup_vs_trad = harmonic_mean(ipc_ratios);
    cell.fairness_gain_vs_trad = harmonic_mean(fair_ratios);
  }

  if (!traditional_requested) {
    std::erase_if(cells, [](const SweepCell& c) {
      return c.kind == core::SchedulerKind::kTraditional;
    });
  }
  return cells;
}

const SweepCell& cell_for(const std::vector<SweepCell>& cells,
                          core::SchedulerKind kind, std::uint32_t iq_entries) {
  for (const SweepCell& cell : cells) {
    if (cell.kind == kind && cell.iq_entries == iq_entries) return cell;
  }
  throw std::invalid_argument("no sweep cell for requested (kind, iq)");
}

std::vector<FailedCell> sweep_failures(const std::vector<SweepCell>& cells) {
  std::vector<FailedCell> failures;
  for (const SweepCell& cell : cells) {
    for (const MixResult& m : cell.mixes) {
      if (m.ok) continue;
      failures.push_back(
          {cell.kind, cell.iq_entries, m.mix_name, m.error, m.attempts, m.diag});
    }
  }
  return failures;
}

}  // namespace msim::sim
