#include "sim/report.hpp"

#include <string>

namespace msim::sim {

double metric_value(const SweepCell& cell, FigureMetric metric) {
  switch (metric) {
    case FigureMetric::kIpcSpeedup:       return cell.ipc_speedup_vs_trad;
    case FigureMetric::kFairnessGain:     return cell.fairness_gain_vs_trad;
    case FigureMetric::kThroughputIpc:    return cell.hmean_ipc;
    case FigureMetric::kAllStallFraction: return cell.mean_all_stall_fraction;
    case FigureMetric::kIqResidency:      return cell.mean_iq_residency;
  }
  return 0.0;
}

TextTable figure_table(const std::vector<SweepCell>& cells,
                       std::span<const core::SchedulerKind> kinds,
                       std::span<const std::uint32_t> iq_sizes,
                       FigureMetric metric) {
  const bool percent = metric == FigureMetric::kIpcSpeedup ||
                       metric == FigureMetric::kFairnessGain;
  std::vector<std::string> headers{"iq_entries"};
  for (const core::SchedulerKind kind : kinds) {
    headers.emplace_back(core::scheduler_kind_name(kind));
  }
  TextTable table(std::move(headers));
  for (const std::uint32_t iq : iq_sizes) {
    table.begin_row();
    table.add_cell(std::uint64_t{iq});
    for (const core::SchedulerKind kind : kinds) {
      const double value = metric_value(cell_for(cells, kind, iq), metric);
      if (percent) {
        table.add_cell(format_percent(value - 1.0));
      } else {
        table.add_cell(value, 3);
      }
    }
  }
  return table;
}

TextTable mix_table(const SweepCell& cell) {
  TextTable table({"mix", "throughput_ipc", "fairness", "all_stall_frac",
                   "iq_residency"});
  for (const MixResult& m : cell.mixes) {
    table.begin_row();
    table.add_cell(m.mix_name);
    table.add_cell(m.throughput_ipc, 3);
    table.add_cell(m.fairness, 3);
    table.add_cell(m.raw.dispatch.all_stall_fraction(), 3);
    table.add_cell(m.raw.iq.mean_residency(), 1);
  }
  return table;
}

}  // namespace msim::sim
