#include "sim/report.hpp"

#include <string>

#include "common/json.hpp"
#include "obs/registry.hpp"

namespace msim::sim {

double metric_value(const SweepCell& cell, FigureMetric metric) {
  switch (metric) {
    case FigureMetric::kIpcSpeedup:       return cell.ipc_speedup_vs_trad;
    case FigureMetric::kFairnessGain:     return cell.fairness_gain_vs_trad;
    case FigureMetric::kThroughputIpc:    return cell.hmean_ipc;
    case FigureMetric::kAllStallFraction: return cell.mean_all_stall_fraction;
    case FigureMetric::kIqResidency:      return cell.mean_iq_residency;
  }
  return 0.0;
}

TextTable figure_table(const std::vector<SweepCell>& cells,
                       std::span<const core::SchedulerKind> kinds,
                       std::span<const std::uint32_t> iq_sizes,
                       FigureMetric metric) {
  const bool percent = metric == FigureMetric::kIpcSpeedup ||
                       metric == FigureMetric::kFairnessGain;
  std::vector<std::string> headers{"iq_entries"};
  for (const core::SchedulerKind kind : kinds) {
    headers.emplace_back(core::scheduler_kind_name(kind));
  }
  TextTable table(std::move(headers));
  for (const std::uint32_t iq : iq_sizes) {
    table.begin_row();
    table.add_cell(std::uint64_t{iq});
    for (const core::SchedulerKind kind : kinds) {
      const double value = metric_value(cell_for(cells, kind, iq), metric);
      if (percent) {
        table.add_cell(format_percent(value - 1.0));
      } else {
        table.add_cell(value, 3);
      }
    }
  }
  return table;
}

std::string_view figure_metric_name(FigureMetric metric) noexcept {
  switch (metric) {
    case FigureMetric::kIpcSpeedup:       return "ipc_speedup";
    case FigureMetric::kFairnessGain:     return "fairness_gain";
    case FigureMetric::kThroughputIpc:    return "throughput_ipc";
    case FigureMetric::kAllStallFraction: return "all_stall_fraction";
    case FigureMetric::kIqResidency:      return "iq_residency";
  }
  return "unknown";
}

TextTable mix_table(const SweepCell& cell) {
  TextTable table({"mix", "throughput_ipc", "fairness", "all_stall_frac",
                   "iq_residency"});
  for (const MixResult& m : cell.mixes) {
    table.begin_row();
    if (!m.ok) {
      // A mix that failed every isolated attempt has no numbers to show.
      table.add_cell(m.mix_name + " [FAILED]");
      table.add_cell("-");
      table.add_cell("-");
      table.add_cell("-");
      table.add_cell("-");
      continue;
    }
    table.add_cell(m.mix_name);
    table.add_cell(m.throughput_ipc, 3);
    table.add_cell(m.fairness, 3);
    table.add_cell(m.raw.dispatch.all_stall_fraction(), 3);
    table.add_cell(m.raw.iq.mean_residency(), 1);
  }
  return table;
}

void write_run_json(std::ostream& os, const RunConfig& config,
                    const RunResult& result, int indent) {
  JsonWriter w(os, indent);
  w.begin_object();

  w.key("config");
  w.begin_object();
  w.key("benchmarks");
  w.begin_array();
  for (const std::string& b : config.benchmarks) w.value(b);
  w.end_array();
  w.kv("scheduler", core::scheduler_kind_name(config.kind));
  w.kv("iq_entries", config.iq_entries);
  w.kv("deadlock", core::deadlock_mode_name(config.deadlock));
  w.kv("scan_depth", config.scan_depth);
  w.kv("dab_exclusive", config.dab_exclusive);
  w.kv("watchdog_timeout", config.watchdog_timeout);
  w.kv("oracle_disambiguation", config.oracle_disambiguation);
  w.kv("fetch_policy", smt::fetch_policy_name(config.fetch_policy));
  w.kv("model_wrong_path", config.model_wrong_path);
  w.kv("seed", config.seed);
  w.kv("warmup", config.warmup);
  w.kv("horizon", config.horizon);
  w.kv("max_cycles", config.max_cycles);
  w.kv("trace_capacity", static_cast<std::uint64_t>(config.trace_capacity));
  w.kv("verify", config.verify);
  w.kv("hang_cycles", config.hang_cycles);
  w.kv("fault_injection", config.faults != nullptr);
  w.end_object();

  w.kv("cycles", result.cycles);
  w.kv("throughput_ipc", result.throughput_ipc);
  w.kv("truncated", result.truncated);
  {
    // Hex, not a JSON number: 64-bit digests do not survive a double.
    static constexpr char kHex[] = "0123456789abcdef";
    std::string digest = "0x";
    for (int shift = 60; shift >= 0; shift -= 4) {
      digest += kHex[(result.commit_digest >> shift) & 0xf];
    }
    w.kv("commit_digest", digest);
  }
  w.key("per_thread_ipc");
  w.begin_array();
  for (const double v : result.per_thread_ipc) w.value(v);
  w.end_array();
  w.key("per_thread_committed");
  w.begin_array();
  for (const std::uint64_t v : result.per_thread_committed) w.value(v);
  w.end_array();
  if (!result.trace.empty() || result.trace_dropped != 0) {
    w.kv("trace_events", static_cast<std::uint64_t>(result.trace.size()));
    w.kv("trace_dropped", result.trace_dropped);
  }
  obs::write_metrics_fields(w, result.metrics);
  w.end_object();
  os << '\n';
}

void write_sweep_json(std::ostream& os, const std::vector<SweepCell>& cells,
                      int indent) {
  JsonWriter w(os, indent);
  w.begin_object();
  w.kv("cell_count", static_cast<std::uint64_t>(cells.size()));
  w.key("cells");
  w.begin_array();
  for (const SweepCell& cell : cells) {
    w.begin_object();
    w.kv("scheduler", core::scheduler_kind_name(cell.kind));
    w.kv("iq_entries", cell.iq_entries);
    w.kv("hmean_ipc", cell.hmean_ipc);
    w.kv("hmean_fairness", cell.hmean_fairness);
    w.kv("ipc_speedup_vs_trad", cell.ipc_speedup_vs_trad);
    w.kv("fairness_gain_vs_trad", cell.fairness_gain_vs_trad);
    w.kv("mean_all_stall_fraction", cell.mean_all_stall_fraction);
    w.kv("mean_iq_residency", cell.mean_iq_residency);
    w.key("mixes");
    w.begin_array();
    for (const MixResult& m : cell.mixes) {
      w.begin_object();
      w.kv("mix", m.mix_name);
      w.kv("ok", m.ok);
      w.kv("attempts", m.attempts);
      if (!m.ok) {
        // Crash-isolated failure: the error replaces the measurements.
        w.kv("error", m.error);
        w.end_object();
        continue;
      }
      w.kv("throughput_ipc", m.throughput_ipc);
      w.kv("fairness", m.fairness);
      w.kv("cycles", m.raw.cycles);
      w.kv("all_stall_fraction", m.raw.dispatch.all_stall_fraction());
      w.kv("iq_residency", m.raw.iq.mean_residency());
      w.key("per_thread_ipc");
      w.begin_array();
      for (const double v : m.raw.per_thread_ipc) w.value(v);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  const std::vector<FailedCell> failures = sweep_failures(cells);
  w.kv("failed_count", static_cast<std::uint64_t>(failures.size()));
  if (!failures.empty()) {
    w.key("failed_cells");
    w.begin_array();
    for (const FailedCell& f : failures) {
      w.begin_object();
      w.kv("scheduler", core::scheduler_kind_name(f.kind));
      w.kv("iq_entries", f.iq_entries);
      w.kv("mix", f.mix_name);
      w.kv("error", f.error);
      w.kv("attempts", f.attempts);
      if (!f.diag.empty()) w.kv("diag", f.diag);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  os << '\n';
}

}  // namespace msim::sim
