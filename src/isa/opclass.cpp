#include "isa/opclass.hpp"

namespace msim::isa {

std::string_view op_class_name(OpClass op) noexcept {
  switch (op) {
    case OpClass::kIntAlu:  return "int_alu";
    case OpClass::kIntMult: return "int_mult";
    case OpClass::kIntDiv:  return "int_div";
    case OpClass::kLoad:    return "load";
    case OpClass::kStore:   return "store";
    case OpClass::kFpAdd:   return "fp_add";
    case OpClass::kFpMult:  return "fp_mult";
    case OpClass::kFpDiv:   return "fp_div";
    case OpClass::kFpSqrt:  return "fp_sqrt";
    case OpClass::kBranch:  return "branch";
  }
  return "unknown";
}

std::string_view fu_kind_name(FuKind kind) noexcept {
  switch (kind) {
    case FuKind::kIntAlu:     return "int_alu";
    case FuKind::kIntMultDiv: return "int_mult_div";
    case FuKind::kLoadStore:  return "load_store";
    case FuKind::kFpAdd:      return "fp_add";
    case FuKind::kFpMultDiv:  return "fp_mult_div_sqrt";
  }
  return "unknown";
}

}  // namespace msim::isa
