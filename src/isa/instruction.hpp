// Dynamic instruction record produced by the trace generator and consumed by
// the pipeline front end.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "isa/opclass.hpp"

namespace msim::isa {

/// Architectural register file shape: 32 integer + 32 floating-point
/// registers per thread, indexed 0..31 and 32..63 in one flat space.
inline constexpr unsigned kIntArchRegs = 32;
inline constexpr unsigned kFpArchRegs = 32;
inline constexpr unsigned kArchRegCount = kIntArchRegs + kFpArchRegs;

/// True when flat architectural register index `r` is a floating-point reg.
[[nodiscard]] constexpr bool is_fp_arch_reg(ArchReg r) noexcept {
  return r >= kIntArchRegs && r < kArchRegCount;
}

/// Maximum register source operands per instruction.  Both the 2OP_BLOCK
/// scheduler and the out-of-order dispatch scheme assume this is 2.
inline constexpr unsigned kMaxSources = 2;

/// One dynamic instruction as it leaves the (synthetic) instruction stream.
/// All dependence information is expressed through architectural register
/// names; the rename stage turns those into physical registers.
struct DynInst {
  SeqNum seq = 0;           ///< program-order index within the thread
  Addr pc = 0;              ///< instruction address (drives I-cache & bpred)
  Addr next_pc = 0;         ///< actual successor address (fallthrough/target)
  Addr mem_addr = 0;        ///< effective address for loads/stores
  OpClass op = OpClass::kIntAlu;
  ArchReg dest = kNoArchReg;
  ArchReg src[kMaxSources] = {kNoArchReg, kNoArchReg};
  bool taken = false;       ///< branches: resolved direction

  [[nodiscard]] bool is_load() const noexcept { return op == OpClass::kLoad; }
  [[nodiscard]] bool is_store() const noexcept { return op == OpClass::kStore; }
  [[nodiscard]] bool is_mem() const noexcept { return is_load() || is_store(); }
  [[nodiscard]] bool is_branch() const noexcept { return op == OpClass::kBranch; }
  [[nodiscard]] bool has_dest() const noexcept { return dest != kNoArchReg; }

  [[nodiscard]] unsigned source_count() const noexcept {
    unsigned n = 0;
    for (ArchReg s : src) {
      if (s != kNoArchReg) ++n;
    }
    return n;
  }
};

}  // namespace msim::isa
