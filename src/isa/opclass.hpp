// Operation classes and the function-unit latency table.
//
// The simulated ISA is a generic RISC with at most two register source
// operands per instruction (the property both the 2OP_BLOCK scheduler and
// this paper depend on; the Alpha ISA the original evaluation used has the
// same property).  Latencies and issue intervals follow Table 1 of the paper.
#pragma once

#include <cstdint>
#include <string_view>

namespace msim::isa {

/// Dynamic operation classes.  Branches and address generation execute on the
/// integer ALUs; loads/stores additionally occupy a load/store port.
enum class OpClass : std::uint8_t {
  kIntAlu,    ///< integer add/sub/logic/shift/compare, branch condition eval
  kIntMult,   ///< integer multiply
  kIntDiv,    ///< integer divide (non-pipelined)
  kLoad,      ///< memory read
  kStore,     ///< memory write
  kFpAdd,     ///< FP add/sub/convert/compare
  kFpMult,    ///< FP multiply
  kFpDiv,     ///< FP divide (non-pipelined)
  kFpSqrt,    ///< FP square root (non-pipelined)
  kBranch,    ///< control transfer (conditional or unconditional)
};

inline constexpr unsigned kOpClassCount = 10;

/// Function-unit pools, matching Table 1 of the paper.
enum class FuKind : std::uint8_t {
  kIntAlu,     ///< 8 units, latency 1, fully pipelined
  kIntMultDiv, ///< 4 units; mult 3/1, div 20/19
  kLoadStore,  ///< 4 ports; address+access 2/1 (L1 hit adds the cache time)
  kFpAdd,      ///< 8 units, latency 2, fully pipelined
  kFpMultDiv,  ///< 4 units; mult 4/1, div 12/12, sqrt 24/24
};

inline constexpr unsigned kFuKindCount = 5;

/// Execution timing of one operation class on its function unit.
struct OpTiming {
  /// Cycles from issue to result availability (for loads: address
  /// generation + L1 access on a hit; misses extend this dynamically).
  std::uint32_t latency;
  /// Cycles before the same unit can accept another operation
  /// (1 = fully pipelined).
  std::uint32_t issue_interval;
};

/// Which pool executes `op`.
[[nodiscard]] constexpr FuKind fu_kind(OpClass op) noexcept {
  switch (op) {
    case OpClass::kIntAlu:
    case OpClass::kBranch:
      return FuKind::kIntAlu;
    case OpClass::kIntMult:
    case OpClass::kIntDiv:
      return FuKind::kIntMultDiv;
    case OpClass::kLoad:
    case OpClass::kStore:
      return FuKind::kLoadStore;
    case OpClass::kFpAdd:
      return FuKind::kFpAdd;
    case OpClass::kFpMult:
    case OpClass::kFpDiv:
    case OpClass::kFpSqrt:
      return FuKind::kFpMultDiv;
  }
  return FuKind::kIntAlu;  // unreachable for valid enumerators
}

/// Timing of `op` per Table 1 of the paper.
[[nodiscard]] constexpr OpTiming op_timing(OpClass op) noexcept {
  switch (op) {
    case OpClass::kIntAlu:  return {1, 1};
    case OpClass::kBranch:  return {1, 1};
    case OpClass::kIntMult: return {3, 1};
    case OpClass::kIntDiv:  return {20, 19};
    case OpClass::kLoad:    return {2, 1};
    case OpClass::kStore:   return {2, 1};
    case OpClass::kFpAdd:   return {2, 1};
    case OpClass::kFpMult:  return {4, 1};
    case OpClass::kFpDiv:   return {12, 12};
    case OpClass::kFpSqrt:  return {24, 24};
  }
  return {1, 1};  // unreachable for valid enumerators
}

/// Number of units in the pool, per Table 1.
[[nodiscard]] constexpr unsigned fu_pool_size(FuKind kind) noexcept {
  switch (kind) {
    case FuKind::kIntAlu:     return 8;
    case FuKind::kIntMultDiv: return 4;
    case FuKind::kLoadStore:  return 4;
    case FuKind::kFpAdd:      return 8;
    case FuKind::kFpMultDiv:  return 4;
  }
  return 1;  // unreachable for valid enumerators
}

/// True when the destination register of `op` is a floating-point register.
[[nodiscard]] constexpr bool writes_fp_reg(OpClass op) noexcept {
  switch (op) {
    case OpClass::kFpAdd:
    case OpClass::kFpMult:
    case OpClass::kFpDiv:
    case OpClass::kFpSqrt:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] std::string_view op_class_name(OpClass op) noexcept;
[[nodiscard]] std::string_view fu_kind_name(FuKind kind) noexcept;

}  // namespace msim::isa
