#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/check.hpp"

namespace msim {

// ---- JsonWriter -------------------------------------------------------------

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    MSIM_CHECK(!root_written_);  // one root value per document
    root_written_ = true;
    return;
  }
  Level& top = stack_.back();
  if (top.scope == Scope::kObject) {
    MSIM_CHECK(key_pending_);  // object members need key() first
    key_pending_ = false;
    return;
  }
  if (top.has_items) os_ << ',';
  top.has_items = true;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({Scope::kObject});
}

void JsonWriter::end_object() {
  MSIM_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject && !key_pending_);
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({Scope::kArray});
}

void JsonWriter::end_array() {
  MSIM_CHECK(!stack_.empty() && stack_.back().scope == Scope::kArray);
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
}

void JsonWriter::key(std::string_view name) {
  MSIM_CHECK(!stack_.empty() && stack_.back().scope == Scope::kObject && !key_pending_);
  if (stack_.back().has_items) os_ << ',';
  stack_.back().has_items = true;
  newline_indent();
  write_escaped(name);
  os_ << (indent_ > 0 ? ": " : ":");
  key_pending_ = true;
}

void JsonWriter::write_escaped(std::string_view s) { os_ << json_escape(s); }

void JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(s);
}

void JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
}

void JsonWriter::value(double x) {
  before_value();
  if (!std::isfinite(x)) {
    os_ << "null";  // JSON has no Inf/NaN literals
    return;
  }
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", x);
  os_.write(buf, n);
}

void JsonWriter::value(std::uint64_t x) {
  before_value();
  os_ << x;
}

void JsonWriter::value(std::int64_t x) {
  before_value();
  os_ << x;
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

bool JsonWriter::complete() const noexcept {
  return stack_.empty() && root_written_ && !key_pending_;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// ---- JsonValue parser -------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("JSON parse error at offset " + std::to_string(pos_) +
                                ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:  return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = b;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':  out += '"'; break;
        case '\\': out += '\\'; break;
        case '/':  out += '/'; break;
        case 'b':  out += '\b'; break;
        case 'f':  out += '\f'; break;
        case 'n':  out += '\n'; break;
        case 'r':  out += '\r'; break;
        case 't':  out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Reports only emit \u for control characters; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    double x = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, x);
    if (ec != std::errc{} || ptr != text_.data() + pos_) fail("malformed number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = x;
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string name = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace(std::move(name), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

namespace {
[[noreturn]] void type_error(const char* want) {
  throw std::invalid_argument(std::string("JSON value is not a ") + want);
}
}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_error("object");
  return object_;
}

const JsonValue& JsonValue::at(std::string_view name) const {
  const auto& obj = as_object();
  const auto it = obj.find(std::string(name));
  if (it == obj.end()) {
    throw std::invalid_argument("JSON object has no member '" + std::string(name) + "'");
  }
  return it->second;
}

bool JsonValue::contains(std::string_view name) const {
  if (type_ != Type::kObject) return false;
  return object_.contains(std::string(name));
}

}  // namespace msim
