#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.hpp"

namespace msim {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MSIM_CHECK(!headers_.empty());
}

void TextTable::begin_row() {
  if (!rows_.empty()) {
    MSIM_CHECK(rows_.back().size() == headers_.size());
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
}

void TextTable::add_cell(std::string value) {
  MSIM_CHECK(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(value));
}

void TextTable::add_cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  add_cell(std::string(buf));
}

void TextTable::add_cell(std::uint64_t value) {
  add_cell(std::to_string(value));
}

void TextTable::add_cell(int value) { add_cell(std::to_string(value)); }

std::string TextTable::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out += "| ";
      out += cell;
      out.append(widths[c] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(cells[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TextTable::print(std::ostream& os, std::string_view title) const {
  os << "== " << title << " ==\n" << to_ascii() << "# CSV\n" << to_csv() << "\n";
}

std::string format_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return std::string(buf);
}

}  // namespace msim
