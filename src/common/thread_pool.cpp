#include "common/thread_pool.hpp"

#include <utility>

namespace msim {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = threads == 0 ? 1u : threads;
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace msim
