#include "common/rng.hpp"

#include <cmath>

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim {
namespace {

// SplitMix64: expands one 64-bit seed into a well-mixed stream used only
// for state initialization.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}



std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  MSIM_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}





Rng Rng::split() noexcept {
  Rng child;
  // Derive the child deterministically from our own stream.
  child.reseed(next_u64());
  return child;
}

std::uint64_t derive_stream_seed(std::uint64_t base, std::string_view tag,
                                 std::uint64_t salt0, std::uint64_t salt1) noexcept {
  // FNV-1a over the tag bytes, then fold each ingredient through the
  // SplitMix64 finalizer so nearby inputs land far apart.
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (const char c : tag) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 0x100000001b3ULL;
  }
  std::uint64_t state = base;
  for (const std::uint64_t ingredient : {digest, salt0, salt1}) {
    state ^= ingredient;
    state = splitmix64(state);
  }
  return state;
}

void Rng::state_io(persist::Archive& ar) {
  ar.section("rng");
  for (auto& word : s_) ar.io(word);
}

MSIM_PERSIST_VIA_STATE_IO(Rng)

std::array<double, 8> cumulative_from_weights(std::span<const double> weights) {
  MSIM_CHECK(!weights.empty() && weights.size() <= 8);
  std::array<double, 8> cum{};
  double running = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    MSIM_CHECK(weights[i] >= 0.0);
    running += weights[i];
    cum[i] = running;
  }
  MSIM_CHECK(running > 0.0);
  // Pad the tail so a full 8-wide span is still valid to sample from.
  for (std::size_t i = weights.size(); i < 8; ++i) {
    cum[i] = running;
  }
  return cum;
}

}  // namespace msim
