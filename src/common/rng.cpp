#include "common/rng.hpp"

#include <cmath>

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: expands one 64-bit seed into a well-mixed stream used only
// for state initialization.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  MSIM_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  MSIM_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::next_geometric(double p) noexcept {
  MSIM_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = 1.0 - next_double();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t Rng::next_index(std::span<const double> cumulative) noexcept {
  MSIM_CHECK(!cumulative.empty());
  const double total = cumulative.back();
  MSIM_CHECK(total > 0.0);
  const double u = next_double() * total;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (u < cumulative[i]) return i;
  }
  return cumulative.size() - 1;
}

Rng Rng::split() noexcept {
  Rng child;
  // Derive the child deterministically from our own stream.
  child.reseed(next_u64());
  return child;
}

std::uint64_t derive_stream_seed(std::uint64_t base, std::string_view tag,
                                 std::uint64_t salt0, std::uint64_t salt1) noexcept {
  // FNV-1a over the tag bytes, then fold each ingredient through the
  // SplitMix64 finalizer so nearby inputs land far apart.
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (const char c : tag) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 0x100000001b3ULL;
  }
  std::uint64_t state = base;
  for (const std::uint64_t ingredient : {digest, salt0, salt1}) {
    state ^= ingredient;
    state = splitmix64(state);
  }
  return state;
}

void Rng::state_io(persist::Archive& ar) {
  ar.section("rng");
  for (auto& word : s_) ar.io(word);
}

MSIM_PERSIST_VIA_STATE_IO(Rng)

std::array<double, 8> cumulative_from_weights(std::span<const double> weights) {
  MSIM_CHECK(!weights.empty() && weights.size() <= 8);
  std::array<double, 8> cum{};
  double running = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    MSIM_CHECK(weights[i] >= 0.0);
    running += weights[i];
    cum[i] = running;
  }
  MSIM_CHECK(running > 0.0);
  // Pad the tail so a full 8-wide span is still valid to sample from.
  for (std::size_t i = weights.size(); i < 8; ++i) {
    cum[i] = running;
  }
  return cum;
}

}  // namespace msim
