// A vector with inline storage for the first N elements, for hot-path
// collections that are almost always tiny (per-tag wakeup lists, per-cycle
// scratch).  Staying inline avoids both the heap allocation and the
// pointer chase of std::vector; beyond N elements it degrades gracefully
// to a heap buffer.
//
// Restricted to trivially copyable element types: growth and clearing are
// then raw memory operations, which is exactly what the hot paths want.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace msim {

template <typename T, std::uint32_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for trivially copyable hot-path types");
  static_assert(N >= 1);

 public:
  SmallVec() noexcept = default;
  SmallVec(const SmallVec& other) { *this = other; }
  SmallVec& operator=(const SmallVec& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(T));
    size_ = other.size_;
    return *this;
  }
  SmallVec(SmallVec&& other) noexcept { move_from(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release_heap();
      move_from(other);
    }
    return *this;
  }
  ~SmallVec() { release_heap(); }

  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  /// True while no heap spill has happened (introspection/tests).
  [[nodiscard]] bool inline_storage() const noexcept { return heap_ == nullptr; }

  [[nodiscard]] T* data() noexcept { return heap_ ? heap_ : inline_; }
  [[nodiscard]] const T* data() const noexcept { return heap_ ? heap_ : inline_; }
  [[nodiscard]] T& operator[](std::uint32_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::uint32_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] T* begin() noexcept { return data(); }
  [[nodiscard]] T* end() noexcept { return data() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data(); }
  [[nodiscard]] const T* end() const noexcept { return data() + size_; }

  // Not noexcept: growth allocates and may throw std::bad_alloc.
  void push_back(const T& value) {
    if (size_ == capacity_) reserve(capacity_ * 2);
    data()[size_++] = value;
  }
  void pop_back() noexcept { --size_; }
  /// Drops the elements but keeps the storage (inline or heap) for reuse.
  void clear() noexcept { size_ = 0; }

  void reserve(std::uint32_t wanted) {
    if (wanted <= capacity_) return;
    std::uint32_t cap = capacity_;
    while (cap < wanted) cap *= 2;
    T* grown = new T[cap];
    std::memcpy(grown, data(), size_ * sizeof(T));
    release_heap();
    heap_ = grown;
    capacity_ = cap;
  }

 private:
  void release_heap() noexcept {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = N;
  }
  void move_from(SmallVec& other) noexcept {
    if (other.heap_) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.capacity_ = N;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = N;
};

}  // namespace msim
