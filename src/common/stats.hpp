// Streaming statistics used throughout the simulator and the experiment
// harness: counters, online mean/variance, bounded histograms, and the
// aggregate means (arithmetic / geometric / harmonic) the paper reports.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace msim {

namespace persist {
class Archive;
}

/// Online mean / variance / min / max accumulator (Welford's algorithm).
class StreamingStat {
 public:
  // Inline: called once per simulated cycle per sampled gauge, which makes
  // it one of the hottest functions in the whole simulator.
  void add(double x) noexcept {
    if (n_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = x < min_ ? x : min_;
      max_ = x > max_ ? x : max_;
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const StreamingStat& other) noexcept;

  /// Checkpoint support: doubles round-trip as raw IEEE-754 bit patterns,
  /// so a restored accumulator is bit-identical, not merely close.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram over [0, bucket_count * bucket_width); values past
/// the end accumulate in the final overflow bucket.
class Histogram {
 public:
  Histogram(std::size_t bucket_count, double bucket_width);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] double bucket_width() const noexcept { return width_; }

  /// Weighted mean of bucket midpoints (overflow bucket uses its lower edge).
  [[nodiscard]] double approximate_mean() const noexcept;
  /// Smallest value v such that at least `q` (in [0,1]) of the mass is <= v,
  /// resolved to a bucket upper edge.
  [[nodiscard]] double approximate_quantile(double q) const noexcept;

  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::vector<std::uint64_t> buckets_;
  double width_;
  std::uint64_t total_ = 0;
};

/// Ratio counter: events / opportunities (e.g. stall cycles / total cycles).
class RatioStat {
 public:
  void add(bool event) noexcept {
    ++opportunities_;
    if (event) ++events_;
  }
  void add_events(std::uint64_t events, std::uint64_t opportunities) noexcept {
    events_ += events;
    opportunities_ += opportunities;
  }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t opportunities() const noexcept { return opportunities_; }
  [[nodiscard]] double value() const noexcept {
    return opportunities_ ? static_cast<double>(events_) / static_cast<double>(opportunities_)
                          : 0.0;
  }

  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::uint64_t events_ = 0;
  std::uint64_t opportunities_ = 0;
};

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double arithmetic_mean(std::span<const double> xs) noexcept;

/// Geometric mean; requires all values > 0. 0 for an empty span.
[[nodiscard]] double geometric_mean(std::span<const double> xs) noexcept;

/// Harmonic mean; requires all values > 0. 0 for an empty span.
/// This is the aggregate the paper uses across workload mixes.
[[nodiscard]] double harmonic_mean(std::span<const double> xs) noexcept;

/// The paper's fairness metric: harmonic mean of per-thread weighted IPCs,
/// where weighted IPC_i = IPC_i(SMT) / IPC_i(alone).  Spans must be equal
/// length and `alone` strictly positive.
[[nodiscard]] double hmean_weighted_ipc(std::span<const double> smt_ipc,
                                        std::span<const double> alone_ipc);

}  // namespace msim
