// Fixed-size worker pool for fanning independent simulations out across
// host cores.
//
// Design constraints, in order:
//   * determinism of the *results* must never depend on the pool: callers
//     submit closures that write into pre-assigned slots, so aggregation
//     order is fixed no matter the completion order;
//   * exceptions thrown by a task must reach the submitter (they surface
//     from the std::future returned by submit());
//   * destruction drains: queued tasks still run before the workers join,
//     so a pool can be scoped tightly around a batch of submissions.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace msim {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 is clamped to 1.
  explicit ThreadPool(unsigned threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs any still-queued tasks, then joins the workers.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues `task` for execution on some worker.  The returned future
  /// carries the task's exception, if any.
  std::future<void> submit(std::function<void()> task);

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// legitimately return 0 on exotic hosts).
  [[nodiscard]] static unsigned default_parallelism() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;  ///< guarded by mu_
};

}  // namespace msim
