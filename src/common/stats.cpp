#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim {

double StreamingStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStat::stddev() const noexcept { return std::sqrt(variance()); }

void StreamingStat::merge(const StreamingStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double combined_n = n1 + n2;
  mean_ += delta * n2 / combined_n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / combined_n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(std::size_t bucket_count, double bucket_width)
    : buckets_(bucket_count, 0), width_(bucket_width) {
  MSIM_CHECK(bucket_count > 0 && bucket_width > 0.0);
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  std::size_t idx = 0;
  if (x > 0.0) {
    idx = static_cast<std::size_t>(x / width_);
    idx = std::min(idx, buckets_.size() - 1);
  }
  buckets_[idx] += weight;
  total_ += weight;
}

double Histogram::approximate_mean() const noexcept {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const bool overflow = (i == buckets_.size() - 1);
    const double rep = overflow ? static_cast<double>(i) * width_
                                : (static_cast<double>(i) + 0.5) * width_;
    acc += rep * static_cast<double>(buckets_[i]);
  }
  return acc / static_cast<double>(total_);
}

double Histogram::approximate_quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<double>(total_) * q;
  double running = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    running += static_cast<double>(buckets_[i]);
    if (running >= target) {
      return (static_cast<double>(i) + 1.0) * width_;
    }
  }
  return static_cast<double>(buckets_.size()) * width_;
}

double arithmetic_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_acc = 0.0;
  for (double x : xs) {
    MSIM_CHECK(x > 0.0);
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double harmonic_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double inv_acc = 0.0;
  for (double x : xs) {
    MSIM_CHECK(x > 0.0);
    inv_acc += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv_acc;
}

double hmean_weighted_ipc(std::span<const double> smt_ipc,
                          std::span<const double> alone_ipc) {
  MSIM_CHECK(smt_ipc.size() == alone_ipc.size() && !smt_ipc.empty());
  double inv_acc = 0.0;
  for (std::size_t i = 0; i < smt_ipc.size(); ++i) {
    MSIM_CHECK(alone_ipc[i] > 0.0);
    const double weighted = smt_ipc[i] / alone_ipc[i];
    MSIM_CHECK(weighted > 0.0);
    inv_acc += 1.0 / weighted;
  }
  return static_cast<double>(smt_ipc.size()) / inv_acc;
}

void StreamingStat::state_io(persist::Archive& ar) {
  ar.section("streaming-stat");
  ar.io(n_);
  ar.io(mean_);
  ar.io(m2_);
  ar.io(sum_);
  ar.io(min_);
  ar.io(max_);
}

MSIM_PERSIST_VIA_STATE_IO(StreamingStat)

void Histogram::state_io(persist::Archive& ar) {
  ar.section("histogram");
  // Geometry (bucket count, width) is construction-time configuration; it
  // is serialized anyway so a mismatched load fails loudly instead of
  // rebinning counts.
  std::uint64_t buckets = buckets_.size();
  double width = width_;
  ar.io(buckets);
  ar.io(width);
  if (!ar.saving() && (buckets != buckets_.size() || width != width_)) {
    throw persist::PersistError("checkpoint: histogram geometry mismatch");
  }
  ar.io(buckets_);
  ar.io(total_);
}

MSIM_PERSIST_VIA_STATE_IO(Histogram)

void RatioStat::state_io(persist::Archive& ar) {
  ar.section("ratio-stat");
  ar.io(events_);
  ar.io(opportunities_);
}

MSIM_PERSIST_VIA_STATE_IO(RatioStat)

}  // namespace msim
