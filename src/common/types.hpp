// Basic scalar types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace msim {

/// Simulated clock cycle count.
using Cycle = std::uint64_t;

/// Monotonically increasing per-thread dynamic instruction sequence number.
/// Sequence numbers define program order within a thread.
using SeqNum = std::uint64_t;

/// Hardware thread context identifier (0-based).
using ThreadId = std::uint8_t;

/// Simulated byte address.
using Addr = std::uint64_t;

/// Physical register index into the shared register file.
using PhysReg = std::uint16_t;

/// Architectural register index (per thread).
using ArchReg = std::uint8_t;

/// Sentinel for "no physical register" (zero-register / immediate operand).
inline constexpr PhysReg kNoPhysReg = std::numeric_limits<PhysReg>::max();

/// Sentinel for "no architectural register".
inline constexpr ArchReg kNoArchReg = std::numeric_limits<ArchReg>::max();

/// Sentinel cycle meaning "not yet scheduled / unknown".
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/// Maximum number of hardware thread contexts the pipeline supports.
inline constexpr unsigned kMaxThreads = 8;

}  // namespace msim
