// Lightweight always-on invariant checks for the simulator.
//
// Simulator bugs manifest as silently wrong statistics, so structural
// invariants (queue occupancy, register-file accounting, program-order
// monotonicity) are checked even in release builds.  The checks are cheap
// (integer compares) relative to the per-cycle work of the pipeline.
//
// By default a failed check prints the expression and calls abort(), which
// is the right behaviour for a standalone run: the process state is
// corrupt and a core dump is the most useful artefact.  Harnesses that run
// many simulations in one process (the sweep engine, fault-injection
// benches, death-free unit tests) can instead install a handler that
// throws msim::CheckError, turning an invariant failure into a per-run
// error that the caller can isolate and report.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace msim {

/// Thrown by throwing_check_handler when an MSIM_CHECK fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Receives (expression, file, line) for a failed check.  A handler may
/// throw; if it returns normally the process aborts (the caller of
/// MSIM_CHECK cannot continue past a failed invariant).
using CheckHandler = void (*)(const char* expr, const char* file, int line);

namespace detail {

inline std::atomic<CheckHandler>& check_handler_slot() {
  static std::atomic<CheckHandler> slot{nullptr};
  return slot;
}

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  if (CheckHandler handler = check_handler_slot().load(std::memory_order_acquire)) {
    handler(expr, file, line);
  }
  std::fprintf(stderr, "MSIM_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace detail

/// Installs a process-wide failure handler; returns the previous one.
/// Pass nullptr to restore the default abort() behaviour.
inline CheckHandler set_check_handler(CheckHandler handler) {
  return detail::check_handler_slot().exchange(handler, std::memory_order_acq_rel);
}

/// Handler that throws CheckError with the failing expression and location.
[[noreturn]] inline void throwing_check_handler(const char* expr, const char* file,
                                                int line) {
  throw CheckError(std::string("MSIM_CHECK failed: ") + expr + " at " + file + ":" +
                   std::to_string(line));
}

/// RAII guard: checks throw CheckError while alive, previous handler is
/// restored on destruction.  The handler slot is process-wide, so install
/// one guard around a whole multi-threaded region (e.g. an entire sweep),
/// not one per worker.
class ScopedCheckThrow {
 public:
  ScopedCheckThrow() : prev_(set_check_handler(&throwing_check_handler)) {}
  ~ScopedCheckThrow() { set_check_handler(prev_); }
  ScopedCheckThrow(const ScopedCheckThrow&) = delete;
  ScopedCheckThrow& operator=(const ScopedCheckThrow&) = delete;

 private:
  CheckHandler prev_;
};

}  // namespace msim

#define MSIM_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::msim::detail::check_failed(#expr, __FILE__, __LINE__);      \
    }                                                               \
  } while (false)
