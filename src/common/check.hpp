// Lightweight always-on invariant checks for the simulator.
//
// Simulator bugs manifest as silently wrong statistics, so structural
// invariants (queue occupancy, register-file accounting, program-order
// monotonicity) are checked even in release builds.  The checks are cheap
// (integer compares) relative to the per-cycle work of the pipeline.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace msim::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "MSIM_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace msim::detail

#define MSIM_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::msim::detail::check_failed(#expr, __FILE__, __LINE__);      \
    }                                                               \
  } while (false)
