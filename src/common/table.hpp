// Plain-text result tables: the bench harness prints each paper table/figure
// as an aligned ASCII table for humans plus a CSV block for scripts.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace msim {

/// A small column-oriented text table.  Cells are strings; numeric helpers
/// format with a fixed precision.  Rendering pads columns to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  void begin_row();
  void add_cell(std::string value);
  void add_cell(std::string_view value) { add_cell(std::string(value)); }
  void add_cell(const char* value) { add_cell(std::string(value)); }
  /// Formats `value` with `precision` digits after the decimal point.
  void add_cell(double value, int precision = 3);
  void add_cell(std::uint64_t value);
  void add_cell(int value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept { return headers_.size(); }

  /// Renders an aligned ASCII table (header, rule, rows).
  [[nodiscard]] std::string to_ascii() const;
  /// Renders RFC-4180-ish CSV (quotes cells containing commas or quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Convenience: ASCII table followed by a "# CSV" block, for bench output.
  void print(std::ostream& os, std::string_view title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double as e.g. "+15.2%" — the paper reports speedups this way.
[[nodiscard]] std::string format_percent(double fraction, int precision = 1);

}  // namespace msim
