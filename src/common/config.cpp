#include "common/config.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace msim {
namespace {

[[noreturn]] void bad(std::string_view what, std::string_view detail) {
  throw std::invalid_argument(std::string(what) + ": '" + std::string(detail) + "'");
}

template <typename T>
T parse_number(std::string_view key, std::string_view text) {
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    bad("config value for '" + std::string(key) + "' does not parse", text);
  }
  return value;
}

}  // namespace

KvConfig KvConfig::parse(std::span<const char* const> args) {
  std::vector<std::string> words;
  words.reserve(args.size());
  for (const char* a : args) words.emplace_back(a);
  return parse_strings(words);
}

KvConfig KvConfig::parse_strings(std::span<const std::string> args) {
  KvConfig cfg;
  for (const std::string& word : args) {
    const auto eq = word.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad("expected key=value argument", word);
    }
    cfg.set(word.substr(0, eq), word.substr(eq + 1));
  }
  return cfg;
}

void KvConfig::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool KvConfig::has(std::string_view key) const { return values_.count(key) > 0; }

std::string KvConfig::get_string(std::string_view key, std::string_view fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t KvConfig::get_int(std::string_view key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : parse_number<std::int64_t>(key, it->second);
}

std::uint64_t KvConfig::get_uint(std::string_view key, std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : parse_number<std::uint64_t>(key, it->second);
}

double KvConfig::get_double(std::string_view key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  // std::from_chars for double is available in GCC 12; use it for consistency.
  double value{};
  const std::string& text = it->second;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("config value for '" + std::string(key) +
                                "' does not parse as double: '" + text + "'");
  }
  return value;
}

bool KvConfig::get_bool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config value for '" + std::string(key) +
                              "' is not a boolean: '" + v + "'");
}

std::vector<std::uint64_t> KvConfig::get_uint_list(
    std::string_view key, std::vector<std::uint64_t> fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<std::uint64_t> out;
  const std::string& text = it->second;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    const std::string_view piece(text.data() + start, end - start);
    if (piece.empty()) {
      throw std::invalid_argument("empty element in list for '" + std::string(key) + "'");
    }
    out.push_back(parse_number<std::uint64_t>(key, piece));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> KvConfig::unknown_keys(
    std::span<const std::string_view> known) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace msim
