// Deterministic pseudo-random number generation for synthetic workloads.
//
// The whole simulator must be reproducible from a single 64-bit seed: a run
// with the same configuration produces bit-identical statistics.  We use
// xoshiro256** (Blackman & Vigna) rather than std::mt19937 because it is
// faster, has a tiny state, and -- unlike the standard distributions -- the
// derived distributions below are specified here and therefore identical
// across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace msim {

namespace persist {
class Archive;
}

/// xoshiro256** 1.0 generator with SplitMix64 seeding.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initializes the state from `seed`; equivalent to constructing anew.
  void reseed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Geometric sample: number of failures before the first success with
  /// per-trial success probability `p` in (0, 1].  Mean = (1-p)/p.
  std::uint64_t next_geometric(double p) noexcept;

  /// Samples an index from a discrete distribution given cumulative weights.
  /// `cumulative` must be non-empty and non-decreasing with a positive back().
  std::size_t next_index(std::span<const double> cumulative) noexcept;

  /// Splits off an independent generator, e.g. one per thread context.
  /// Derived from the current state, so the split sequence is deterministic.
  Rng split() noexcept;

  /// Checkpoint support: serializes the four state words verbatim, so a
  /// restored generator continues the exact output sequence.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::array<std::uint64_t, 4> s_{};
};

/// Builds the cumulative weight vector used by Rng::next_index from raw
/// (non-negative, not all zero) weights.
std::array<double, 8> cumulative_from_weights(std::span<const double> weights);

/// Derives an independent stream seed from a base seed, a textual tag and
/// two numeric salts.  Experiment sweeps use this to give every simulation
/// its own RNG stream that depends only on (base seed, identity of the run),
/// never on which host thread ran it or in what order — the keystone of the
/// parallel-equals-serial guarantee.  The derivation is order-sensitive and
/// well mixed (SplitMix64 finalizer over an FNV-1a digest of the tag).
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t base,
                                               std::string_view tag,
                                               std::uint64_t salt0 = 0,
                                               std::uint64_t salt1 = 0) noexcept;

}  // namespace msim
