// Deterministic pseudo-random number generation for synthetic workloads.
//
// The whole simulator must be reproducible from a single 64-bit seed: a run
// with the same configuration produces bit-identical statistics.  We use
// xoshiro256** (Blackman & Vigna) rather than std::mt19937 because it is
// faster, has a tiny state, and -- unlike the standard distributions -- the
// derived distributions below are specified here and therefore identical
// across standard-library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/check.hpp"

namespace msim {

namespace persist {
class Archive;
}

/// xoshiro256** 1.0 generator with SplitMix64 seeding.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initializes the state from `seed`; equivalent to constructing anew.
  void reseed(std::uint64_t seed) noexcept;

  // The draw primitives below are defined inline: trace generation makes
  // several draws per synthesized instruction, and the out-of-line call
  // overhead dominated generator-bound profiles.  The arithmetic is
  // unchanged -- every sequence is bit-identical to the out-of-line
  // versions (golden digests pin this).

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    MSIM_CHECK(bound > 0);
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Geometric sample: number of failures before the first success with
  /// per-trial success probability `p` in (0, 1].  Mean = (1-p)/p.
  std::uint64_t next_geometric(double p) noexcept {
    MSIM_CHECK(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 0;
    if (p != geom_p_) {
      geom_p_ = p;
      geom_log1p_ = std::log1p(-p);
    }
    const double u = 1.0 - next_double();  // in (0, 1]
    return static_cast<std::uint64_t>(std::floor(std::log(u) / geom_log1p_));
  }

  /// Samples an index from a discrete distribution given cumulative weights.
  /// `cumulative` must be non-empty and non-decreasing with a positive back().
  std::size_t next_index(std::span<const double> cumulative) noexcept {
    MSIM_CHECK(!cumulative.empty());
    const double total = cumulative.back();
    MSIM_CHECK(total > 0.0);
    const double u = next_double() * total;
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      if (u < cumulative[i]) return i;
    }
    return cumulative.size() - 1;
  }

  /// Splits off an independent generator, e.g. one per thread context.
  /// Derived from the current state, so the split sequence is deterministic.
  Rng split() noexcept;

  /// Checkpoint support: serializes the four state words verbatim, so a
  /// restored generator continues the exact output sequence.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  void state_io(persist::Archive& ar);

  std::array<std::uint64_t, 4> s_{};
  // One-entry memo for next_geometric's log1p(-p): callers draw with a
  // handful of fixed p values, and the libm call shows up in generator-bound
  // profiles.  Pure cache (same p -> bit-identical result), never serialized.
  double geom_p_ = -1.0;
  double geom_log1p_ = 0.0;
};

/// Builds the cumulative weight vector used by Rng::next_index from raw
/// (non-negative, not all zero) weights.
std::array<double, 8> cumulative_from_weights(std::span<const double> weights);

/// Derives an independent stream seed from a base seed, a textual tag and
/// two numeric salts.  Experiment sweeps use this to give every simulation
/// its own RNG stream that depends only on (base seed, identity of the run),
/// never on which host thread ran it or in what order — the keystone of the
/// parallel-equals-serial guarantee.  The derivation is order-sensitive and
/// well mixed (SplitMix64 finalizer over an FNV-1a digest of the tag).
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t base,
                                               std::string_view tag,
                                               std::uint64_t salt0 = 0,
                                               std::uint64_t salt1 = 0) noexcept;

}  // namespace msim
