// Versioned, endian-stable binary serialization for checkpoint/restore.
//
// persist::Archive is a bidirectional stream: the same `state_io` member
// function both saves and loads a structure, so the field list can never
// drift between the two directions.  Encoding rules, chosen so a checkpoint
// written on any host restores bit-identically on any other:
//
//   * integers and enums   -- fixed-width little-endian, regardless of host
//   * bool                 -- one byte, 0 or 1
//   * double               -- IEEE-754 bit pattern as a little-endian u64
//                             (round-trips NaN payloads and -0.0 exactly)
//   * strings / containers -- u64 element count, then elements in order
//
// section() interleaves 32-bit FNV-1a tags of structural labels into the
// stream; a load that drifts out of sync fails fast with the label of the
// section it expected instead of silently misinterpreting bytes.  All load
// errors throw PersistError.
#pragma once

#include <bit>
#include <cstring>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace msim::persist {

/// Thrown on any malformed, truncated, or mismatched checkpoint payload.
class PersistError : public std::runtime_error {
 public:
  explicit PersistError(const std::string& what) : std::runtime_error(what) {}
};

/// 32-bit FNV-1a of a structural label (used for section markers).
[[nodiscard]] constexpr std::uint32_t tag_hash(std::string_view tag) noexcept {
  std::uint32_t h = 0x811c9dc5u;
  for (const char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

class Archive {
 public:
  /// An archive that serializes into an internal byte buffer (see bytes()).
  [[nodiscard]] static Archive saver() { return Archive(true, {}); }

  /// An archive that deserializes from `bytes`.
  [[nodiscard]] static Archive loader(std::vector<std::uint8_t> bytes) {
    return Archive(false, std::move(bytes));
  }

  [[nodiscard]] bool saving() const noexcept { return saving_; }

  /// The serialized payload (saving archives only).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }

  /// Scalars: integers, enums, bool, double.
  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void io(T& v) {
    if constexpr (std::is_enum_v<T>) {
      auto u = static_cast<std::underlying_type_t<T>>(v);
      io(u);
      v = static_cast<T>(u);
    } else if constexpr (std::is_same_v<T, bool>) {
      std::uint8_t u = v ? 1 : 0;
      io(u);
      if (u > 1) throw PersistError("checkpoint: bool byte out of range");
      v = u != 0;
    } else if constexpr (std::is_floating_point_v<T>) {
      static_assert(sizeof(T) == 8, "only double is supported");
      auto u = std::bit_cast<std::uint64_t>(v);
      io(u);
      v = std::bit_cast<T>(u);
    } else {
      using U = std::make_unsigned_t<T>;
      auto u = static_cast<U>(v);
      if (saving_) {
        // The stream is little-endian; on a little-endian host that is the
        // in-memory representation, and one memcpy beats a per-byte loop by
        // an order of magnitude (in-memory region checkpoints for
        // mode=sampled serialize the whole cache hierarchy per region, so
        // scalar io is a measured hot path).
        if constexpr (std::endian::native == std::endian::little) {
          const std::size_t off = buf_.size();
          buf_.resize(off + sizeof(U));
          std::memcpy(buf_.data() + off, &u, sizeof(U));
        } else {
          for (std::size_t i = 0; i < sizeof(U); ++i) {
            buf_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
          }
        }
      } else {
        if (sizeof(U) > buf_.size() - pos_) {
          throw PersistError("checkpoint: truncated stream (wanted byte " +
                             std::to_string(pos_ + sizeof(U)) + " of " +
                             std::to_string(buf_.size()) + ")");
        }
        if constexpr (std::endian::native == std::endian::little) {
          std::memcpy(&u, buf_.data() + pos_, sizeof(U));
          pos_ += sizeof(U);
        } else {
          u = 0;
          for (std::size_t i = 0; i < sizeof(U); ++i) {
            u |= static_cast<U>(static_cast<U>(buf_[pos_++]) << (8 * i));
          }
        }
      }
      v = static_cast<T>(u);
    }
  }

  void io(std::string& s) {
    std::uint64_t n = s.size();
    io(n);
    if (!saving_) s.resize(checked_count(n, 1));
    for (char& c : s) {
      auto b = static_cast<std::uint8_t>(c);
      io(b);
      c = static_cast<char>(b);
    }
  }

  /// Sequences of scalars (vector / deque / string elements handled above).
  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void io(std::vector<T>& v) {
    io_sequence(v, [](Archive& ar, T& x) { ar.io(x); });
  }
  template <typename T>
    requires std::is_arithmetic_v<T> || std::is_enum_v<T>
  void io(std::deque<T>& v) {
    io_sequence(v, [](Archive& ar, T& x) { ar.io(x); });
  }

  /// Sequence with a per-element callback: `per(Archive&, Elem&)`.
  /// Works for any container with size()/resize() and iteration.
  template <typename Seq, typename Fn>
  void io_sequence(Seq& seq, Fn&& per) {
    std::uint64_t n = seq.size();
    io(n);
    if (!saving_) {
      seq.clear();
      seq.resize(checked_count(n, 1));
    }
    for (auto& e : seq) per(*this, e);
  }

  /// Fixed-extent range (std::array, C array, SmallVec data window): the
  /// caller owns the extent, only the elements are streamed.
  template <typename It, typename Fn>
  void io_range(It first, It last, Fn&& per) {
    for (; first != last; ++first) per(*this, *first);
  }

  template <typename T, typename Fn>
  void io_optional(std::optional<T>& o, Fn&& per) {
    bool engaged = o.has_value();
    io(engaged);
    if (!saving_) o = engaged ? std::optional<T>(T{}) : std::nullopt;
    if (engaged) per(*this, *o);
  }

  /// Ordered map; keys and values streamed via callbacks in key order.
  template <typename K, typename V, typename Fn>
  void io_map(std::map<K, V>& m, Fn&& per_value) {
    std::uint64_t n = m.size();
    io(n);
    if (saving_) {
      for (auto& [k, v] : m) {
        K key = k;
        io(key);
        per_value(*this, v);
      }
    } else {
      m.clear();
      (void)checked_count(n, 1);
      for (std::uint64_t i = 0; i < n; ++i) {
        K key{};
        io(key);
        V value{};
        per_value(*this, value);
        m.emplace(key, std::move(value));
      }
    }
  }

  /// Writes (saving) or verifies (loading) a structural marker.  A mismatch
  /// means the stream is out of sync with the code reading it -- typically a
  /// format-version skew -- and loading must not continue.
  void section(std::string_view tag) {
    std::uint32_t h = tag_hash(tag);
    const std::uint32_t expected = h;
    io(h);
    if (!saving_ && h != expected) {
      throw PersistError("checkpoint: section marker mismatch at '" +
                         std::string(tag) +
                         "' (stream out of sync; see docs/CHECKPOINT.md)");
    }
  }

  /// Loading archives: asserts every byte was consumed.
  void expect_end() const {
    if (!saving_ && pos_ != buf_.size()) {
      throw PersistError("checkpoint: " + std::to_string(buf_.size() - pos_) +
                         " trailing byte(s) after final field");
    }
  }

 private:
  Archive(bool saving, std::vector<std::uint8_t> bytes)
      : buf_(std::move(bytes)), saving_(saving) {}

  [[nodiscard]] std::uint8_t take_byte() {
    if (pos_ >= buf_.size()) {
      throw PersistError("checkpoint: truncated stream (wanted byte " +
                         std::to_string(pos_ + 1) + " of " +
                         std::to_string(buf_.size()) + ")");
    }
    return buf_[pos_++];
  }

  /// Bounds a declared element count against the bytes actually remaining,
  /// so a corrupt length prefix cannot trigger a huge allocation.
  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t min_elem_bytes) const {
    if (n > (buf_.size() - pos_) / min_elem_bytes + 1) {
      throw PersistError("checkpoint: declared element count " +
                         std::to_string(n) + " exceeds remaining stream");
    }
    return static_cast<std::size_t>(n);
  }

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool saving_;
};

namespace detail {
inline void require_saving(const Archive& ar) {
  if (!ar.saving()) throw PersistError("save_state called on a loading archive");
}
inline void require_loading(const Archive& ar) {
  if (ar.saving()) throw PersistError("load_state called on a saving archive");
}
}  // namespace detail

}  // namespace msim::persist

/// Defines Type::save_state / Type::load_state as const-correct wrappers
/// around the bidirectional Type::state_io(persist::Archive&).
#define MSIM_PERSIST_VIA_STATE_IO(Type)                              \
  void Type::save_state(::msim::persist::Archive& ar) const {        \
    ::msim::persist::detail::require_saving(ar);                     \
    const_cast<Type*>(this)->state_io(ar);                           \
  }                                                                  \
  void Type::load_state(::msim::persist::Archive& ar) {              \
    ::msim::persist::detail::require_loading(ar);                    \
    state_io(ar);                                                    \
  }
