// Dependency-free JSON support for machine-readable run reports.
//
// JsonWriter is a streaming emitter with automatic comma/indent handling:
// reports (statistics registries, sweep grids, resolved configurations) are
// written directly to an ostream without building a document tree.  JsonValue
// is a minimal recursive-descent parser used by round-trip tests and by
// tooling that reads the reports back.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace msim {

/// Streaming JSON emitter.  Calls must form a well-formed document:
/// values at top level or inside arrays, key() before every value inside
/// objects.  Misuse trips MSIM_CHECK.
class JsonWriter {
 public:
  /// `indent` = 0 emits compact single-line output.
  explicit JsonWriter(std::ostream& os, int indent = 2) : os_(os), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; the next call must produce its value.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double x);
  void value(std::uint64_t x);
  void value(std::int64_t x);
  void value(std::uint32_t x) { value(std::uint64_t{x}); }
  void value(std::int32_t x) { value(std::int64_t{x}); }
  void null();

  /// key() + value() in one call.
  template <typename T>
  void kv(std::string_view name, const T& x) {
    key(name);
    value(x);
  }

  /// True once every opened scope has been closed and a root value written.
  [[nodiscard]] bool complete() const noexcept;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void before_value();
  void newline_indent();
  void write_escaped(std::string_view s);

  std::ostream& os_;
  int indent_;
  struct Level {
    Scope scope;
    bool has_items = false;
  };
  std::vector<Level> stack_;
  bool key_pending_ = false;
  bool root_written_ = false;
};

/// Escapes `s` as a JSON string literal (including the quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Parsed JSON document node.  Numbers are stored as double (sufficient for
/// report round-trips; counters up to 2^53 are exact).
class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document; throws std::invalid_argument on malformed
  /// input or trailing garbage.
  static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }

  /// Typed accessors; throw std::invalid_argument on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; throws std::invalid_argument when absent.
  [[nodiscard]] const JsonValue& at(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace msim
