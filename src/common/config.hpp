// key=value configuration parsing for bench/example command lines.
//
// Every bench binary accepts overrides like `iq=64 threads=2 horizon=500000`
// so experiments can be re-run at different scales without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace msim {

/// An ordered key=value store parsed from command-line words.
/// Unknown keys are kept and can be listed, so a bench can reject typos.
class KvConfig {
 public:
  KvConfig() = default;

  /// Parses words of the form `key=value`; a bare word is an error.
  /// Throws std::invalid_argument on malformed input.
  static KvConfig parse(std::span<const char* const> args);
  static KvConfig parse_strings(std::span<const std::string> args);

  void set(std::string key, std::string value);

  [[nodiscard]] bool has(std::string_view key) const;

  /// Typed getters; return `fallback` when the key is absent and throw
  /// std::invalid_argument when the value does not parse.
  [[nodiscard]] std::string get_string(std::string_view key, std::string_view fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Comma-separated list of unsigned values, e.g. "32,48,64".
  [[nodiscard]] std::vector<std::uint64_t> get_uint_list(
      std::string_view key, std::vector<std::uint64_t> fallback) const;

  /// Keys present in the config but not in `known`; benches use this to
  /// reject misspelled parameters instead of silently ignoring them.
  [[nodiscard]] std::vector<std::string> unknown_keys(
      std::span<const std::string_view> known) const;

  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace msim
