// Fault-injection seam for the dispatch/issue machinery.
//
// The scheduler and pipeline consult an optional FaultHooks instance at
// the points where real hardware hazards originate: operand readiness
// classification, structural-resource admission, and execution latency.
// The default implementation injects nothing, so a null / default hooks
// object is exactly the fault-free machine.  Concrete injectors live in
// src/robust/ (which depends on core, never the reverse).
//
// Implementations must be deterministic pure functions of their arguments:
// the scheduler may query the same (thread, seq, cycle) coordinate several
// times per cycle and replay the same seq after a watchdog flush, and the
// sweep engine calls sessions from multiple worker threads.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace msim::core {

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// Treat this instruction as a non-deterministic-latency consumer even
  /// if its sources are ready (forced NDI storm).
  [[nodiscard]] virtual bool force_ndi(ThreadId tid, SeqNum seq, Cycle now) const {
    (void)tid, (void)seq, (void)now;
    return false;
  }

  /// Pretend the shared issue queue is full this cycle (transient
  /// structural exhaustion).
  [[nodiscard]] virtual bool iq_exhausted(Cycle now) const {
    (void)now;
    return false;
  }

  /// Pretend this thread's ROB is full this cycle (blocks rename).
  [[nodiscard]] virtual bool rob_exhausted(ThreadId tid, Cycle now) const {
    (void)tid, (void)now;
    return false;
  }

  /// Pretend this thread's LSQ is full this cycle (blocks memory rename).
  [[nodiscard]] virtual bool lsq_exhausted(ThreadId tid, Cycle now) const {
    (void)tid, (void)now;
    return false;
  }

  /// Extra execution latency, in cycles, added when this instruction
  /// issues (memory / FU latency perturbation).
  [[nodiscard]] virtual std::uint32_t extra_issue_latency(ThreadId tid, SeqNum seq,
                                                          Cycle now) const {
    (void)tid, (void)seq, (void)now;
    return 0;
  }

  /// Sabotage fault: stall the commit stage entirely this cycle.  Used by
  /// self-tests to manufacture a guaranteed hang; never part of a
  /// resilience plan the machine is expected to survive.
  [[nodiscard]] virtual bool commit_blocked(Cycle now) const {
    (void)now;
    return false;
  }

  /// Sabotage fault: silently drop this instruction at dispatch instead
  /// of inserting it into the issue queue.  Leaks the ROB entry by
  /// design — used by self-tests to prove the invariant checker catches
  /// accounting bugs.
  [[nodiscard]] virtual bool drop_dispatch(ThreadId tid, SeqNum seq, Cycle now) const {
    (void)tid, (void)seq, (void)now;
    return false;
  }
};

}  // namespace msim::core
