#include "core/sched_types.hpp"

namespace msim::core {

std::string_view scheduler_kind_name(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kTraditional:          return "traditional";
    case SchedulerKind::kTwoOpBlock:           return "2op_block";
    case SchedulerKind::kTwoOpBlockOoo:        return "2op_block_ooo";
    case SchedulerKind::kTwoOpBlockOooFiltered: return "2op_block_ooo_filtered";
    case SchedulerKind::kTagElimination:         return "tag_elimination";
  }
  return "unknown";
}

std::string_view deadlock_mode_name(DeadlockMode mode) noexcept {
  switch (mode) {
    case DeadlockMode::kAvoidanceBuffer: return "avoidance_buffer";
    case DeadlockMode::kWatchdog:        return "watchdog";
  }
  return "unknown";
}

std::string_view dispatch_block_name(DispatchBlock block) noexcept {
  switch (block) {
    case DispatchBlock::kNone:        return "none";
    case DispatchBlock::kEmptyBuffer: return "empty_buffer";
    case DispatchBlock::kIqFull:      return "iq_full";
    case DispatchBlock::kTwoNonReady: return "two_non_ready";
    case DispatchBlock::kWidth:       return "width";
  }
  return "unknown";
}

}  // namespace msim::core
