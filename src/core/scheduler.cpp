#include "core/scheduler.hpp"

#include <algorithm>

#include "common/archive.hpp"
#include "common/check.hpp"
#include "core/state_io.hpp"

namespace msim::core {

Scheduler::Scheduler(const SchedulerConfig& config, unsigned thread_count,
                     unsigned dispatch_width, unsigned issue_width)
    : config_(config),
      thread_count_(thread_count),
      dispatch_width_(dispatch_width),
      issue_width_(issue_width),
      iq_(config.kind == SchedulerKind::kTagElimination
              ? IqLayout::tag_eliminated(config.iq_entries)
              : IqLayout::uniform(config.iq_entries,
                                  reduced_tag(config.kind) ? std::uint8_t{1}
                                                           : std::uint8_t{2})),
      buffers_(thread_count),
      dab_(thread_count),
      scan_(thread_count),
      block_reason_(thread_count, DispatchBlock::kNone),
      last_inserted_seq_(thread_count, 0),
      insert_seq_valid_(thread_count, 0),
      watchdog_remaining_(config.watchdog_timeout) {
  MSIM_CHECK(thread_count_ >= 1 && thread_count_ <= kMaxThreads);
  MSIM_CHECK(dispatch_width_ >= 1 && issue_width_ >= 1);
  MSIM_CHECK(config_.rename_buffer_entries >= 1);
  for (auto& buf : buffers_) buf.init(config_.rename_buffer_entries);
}

bool Scheduler::buffer_has_space(ThreadId tid) const {
  return buffers_.at(tid).size() < config_.rename_buffer_entries;
}

std::uint32_t Scheduler::buffer_size(ThreadId tid) const {
  return static_cast<std::uint32_t>(buffers_.at(tid).size());
}

void Scheduler::insert(const SchedInst& inst) {
  auto& buf = buffers_.at(inst.tid);
  MSIM_CHECK(buf.size() < config_.rename_buffer_entries);
  // Renaming is in order within a thread even under out-of-order dispatch
  // (Section 4), so insertions must arrive in consecutive program order.
  // (A watchdog flush resets the expectation: replay restarts at an older
  // sequence number.)
  if (insert_seq_valid_[inst.tid]) {
    MSIM_CHECK(inst.seq == last_inserted_seq_[inst.tid] + 1);
  }
  insert_seq_valid_[inst.tid] = 1;
  last_inserted_seq_[inst.tid] = inst.seq;
  buf.push_back(inst);
}

unsigned Scheduler::non_ready_sources(const SchedInst& inst, const DispatchEnv& env) {
  unsigned count = 0;
  PhysReg first_unready = kNoPhysReg;
  for (PhysReg src : inst.src) {
    if (src == kNoPhysReg || env.is_ready(src)) continue;
    if (src == first_unready) continue;  // one comparator covers both slots
    first_unready = src;
    ++count;
  }
  return count;
}

unsigned Scheduler::classify_non_ready(const SchedInst& inst, const DispatchEnv& env,
                                       Cycle now) {
  if (faults_ && faults_->force_ndi(inst.tid, inst.seq, now)) {
    ++dstats_.fault_forced_ndis;
    return isa::kMaxSources;
  }
  return non_ready_sources(inst, env);
}

bool Scheduler::iq_denies(unsigned non_ready, Cycle now) {
  if (!iq_.has_entry_for(non_ready)) return true;
  if (faults_ && faults_->iq_exhausted(now)) {
    ++dstats_.fault_iq_denials;
    return true;
  }
  return false;
}

bool Scheduler::reads_any(const SchedInst& inst, const std::vector<PhysReg>& regs) {
  for (PhysReg src : inst.src) {
    if (src == kNoPhysReg) continue;
    if (std::find(regs.begin(), regs.end(), src) != regs.end()) return true;
  }
  return false;
}

void Scheduler::dispatch_into_iq(const SchedInst& inst, const DispatchEnv& env,
                                 Cycle now) {
  // Collect the distinct non-ready tags the IQ entry must watch.
  PhysReg waiting[isa::kMaxSources];
  std::size_t n = 0;
  for (PhysReg src : inst.src) {
    if (src == kNoPhysReg || env.is_ready(src)) continue;
    bool dup = false;
    for (std::size_t i = 0; i < n; ++i) dup = dup || waiting[i] == src;
    if (!dup) {
      MSIM_CHECK(n < isa::kMaxSources);
      waiting[n] = src;
      ++n;
    }
  }
  iq_.dispatch(inst, {waiting, n}, now);
}

void Scheduler::sample_behind_ndi(ThreadId tid, const DispatchEnv& env) {
  const auto& buf = buffers_[tid];
  // buf[0] is the blocking NDI; classify everything piled up behind it.
  // This feeds the Section-4 observation that ~90% of such instructions
  // are HDIs.  Note HDI status here considers only the comparator
  // constraint, not momentary IQ occupancy, matching the paper's usage.
  for (std::uint32_t i = 1; i < buf.size(); ++i) {
    ++dstats_.behind_ndi_examined;
    if (non_ready_sources(buf[i], env) <= 1) ++dstats_.behind_ndi_hdis;
  }
}

bool Scheduler::try_dispatch_one(ThreadId tid, Cycle now, const DispatchEnv& env) {
  auto& buf = buffers_[tid];
  ScanState& scan = scan_[tid];
  if (scan.exhausted) return false;
  if (buf.empty()) {
    block_reason_[tid] = DispatchBlock::kEmptyBuffer;
    scan.exhausted = true;
    return false;
  }

  if (!ooo_dispatch(config_.kind)) {
    // In-order policies: only the head is ever considered.  An instruction
    // with more non-ready sources than any entry class can watch is an NDI
    // in the 2OP_BLOCK sense (it blocks until an operand arrives); one that
    // merely lacks a *free* adequate entry right now waits on queue
    // occupancy (the tag-elimination and traditional cases).
    const SchedInst& head = buf.front();
    const unsigned non_ready = classify_non_ready(head, env, now);
    if (non_ready > iq_.max_comparators()) {
      if (block_reason_[tid] != DispatchBlock::kTwoNonReady) {
        block_reason_[tid] = DispatchBlock::kTwoNonReady;
        sample_behind_ndi(tid, env);  // once per blocked cycle
      }
      scan.exhausted = true;
      return false;
    }
    if (iq_denies(non_ready, now)) {
      block_reason_[tid] = DispatchBlock::kIqFull;
      scan.exhausted = true;
      return false;
    }
    if (faults_ && faults_->drop_dispatch(tid, head.seq, now)) {
      ++dstats_.fault_dropped_dispatches;
      buf.pop_front();
      block_reason_[tid] = DispatchBlock::kNone;
      return true;
    }
    dispatch_into_iq(head, env, now);
    ++dstats_.dispatched_by_nonready[std::min(non_ready, 2u)];
    if (tracer_) tracer_->record(now, tid, head.seq, obs::TraceStage::kDispatch);
    buf.pop_front();
    block_reason_[tid] = DispatchBlock::kNone;
    return true;
  }

  // Out-of-order dispatch: scan past NDIs up to the configured depth.
  const bool filtered = config_.kind == SchedulerKind::kTwoOpBlockOooFiltered;
  const std::uint32_t depth = config_.effective_scan_depth();
  while (scan.pos < buf.size() && scan.examined < depth) {
    const SchedInst& cand = buf[scan.pos];
    const unsigned non_ready = classify_non_ready(cand, env, now);
    const bool tainted = reads_any(cand, scan.tainted);
    if (non_ready <= iq_.max_comparators() && iq_denies(non_ready, now)) {
      scan.saw_iq_full = true;
      // Deadlock avoidance (Section 4): when the thread's oldest ROB
      // instruction cannot get an IQ entry, park it in the DAB, from
      // which it will issue with priority.  It is the oldest in the ROB,
      // so all of its sources are ready by definition.
      if (config_.deadlock == DeadlockMode::kAvoidanceBuffer && !dab_[tid] &&
          env.is_oldest_in_rob(tid, buf.front().seq)) {
        MSIM_CHECK(non_ready_sources(buf.front(), env) == 0);
        dab_[tid] = buf.front();
        ++dab_live_;
        buf.pop_front();
        if (scan.pos > 0) --scan.pos;
        ++dstats_.dab_inserts;
        if (tracer_) {
          tracer_->record(now, tid, dab_[tid]->seq, obs::TraceStage::kDabInsert);
        }
        block_reason_[tid] = DispatchBlock::kNone;
        return true;  // consumed a dispatch slot
      }
      block_reason_[tid] = DispatchBlock::kIqFull;
      scan.exhausted = true;
      return false;
    }
    if (non_ready > iq_.max_comparators()) {
      // NDI: bypass it; its destination taints dependents.
      scan.saw_ndi = true;
      if (cand.dest != kNoPhysReg) scan.tainted.push_back(cand.dest);
      ++scan.pos;
      ++scan.examined;
      continue;
    }
    if (filtered && tainted) {
      // Idealized filtering: an HDI dependent (directly or transitively)
      // on a bypassed NDI is held back.
      ++dstats_.filtered_suppressed;
      if (cand.dest != kNoPhysReg) scan.tainted.push_back(cand.dest);
      ++scan.pos;
      ++scan.examined;
      continue;
    }

    // Dispatchable: take it.
    if (faults_ && faults_->drop_dispatch(tid, cand.seq, now)) {
      ++dstats_.fault_dropped_dispatches;
      buf.erase_at(scan.pos);
      block_reason_[tid] = DispatchBlock::kNone;
      return true;
    }
    if (scan.saw_ndi) {
      ++dstats_.ooo_dispatches;
      if (tainted) {
        ++dstats_.ooo_dispatches_dependent;
        if (cand.dest != kNoPhysReg) scan.tainted.push_back(cand.dest);
      }
    }
    dispatch_into_iq(cand, env, now);
    ++dstats_.dispatched_by_nonready[std::min(non_ready, 2u)];
    if (tracer_) {
      tracer_->record(now, tid, cand.seq, obs::TraceStage::kDispatch,
                      scan.saw_ndi ? obs::kTraceFlagOooBypass : std::uint8_t{0});
    }
    ++scan.examined;
    buf.erase_at(scan.pos);  // pos now indexes the next entry
    block_reason_[tid] = DispatchBlock::kNone;
    return true;
  }

  scan.exhausted = true;
  if (scan.saw_ndi && block_reason_[tid] == DispatchBlock::kNone) {
    block_reason_[tid] = DispatchBlock::kTwoNonReady;
  }
  return false;
}

DispatchCycleResult Scheduler::run_dispatch(Cycle now, const DispatchEnv& env) {
  ++dstats_.cycles;
  for (ThreadId t = 0; t < thread_count_; ++t) {
    scan_[t].reset();
    block_reason_[t] = DispatchBlock::kNone;
  }

  DispatchCycleResult result;
  rr_start_ = (rr_start_ + 1) % thread_count_;
  bool progress = true;
  while (result.dispatched < dispatch_width_ && progress) {
    progress = false;
    for (unsigned i = 0; i < thread_count_ && result.dispatched < dispatch_width_; ++i) {
      const auto tid = static_cast<ThreadId>((rr_start_ + i) % thread_count_);
      if (try_dispatch_one(tid, now, env)) {
        ++result.dispatched;
        progress = true;
      }
    }
  }
  dstats_.dispatched += result.dispatched;

  // Classify the cycle for the Section-3 stall statistic: "the dispatch of
  // all threads stalls due to all threads having instructions with two
  // non-ready sources".  Every thread must actually hold an instruction
  // blocked by the comparator constraint -- a thread with an empty buffer
  // is fetch-starved, not stalled by the 2OP_BLOCK rule.
  if (result.dispatched == 0) {
    ++dstats_.no_dispatch_cycles;
    bool all_ndi = true;
    for (ThreadId t = 0; t < thread_count_; ++t) {
      all_ndi = all_ndi && block_reason_[t] == DispatchBlock::kTwoNonReady;
    }
    if (all_ndi) ++dstats_.all_threads_ndi_stall_cycles;
  }
  for (ThreadId t = 0; t < thread_count_; ++t) {
    if (block_reason_[t] == DispatchBlock::kTwoNonReady) ++dstats_.ndi_blocked_thread_cycles;
    if (block_reason_[t] == DispatchBlock::kIqFull) ++dstats_.iq_full_thread_cycles;
  }

  // Watchdog (Section 4): counts down on dispatch-free cycles while work is
  // waiting; any dispatch resets it.
  if (config_.deadlock == DeadlockMode::kWatchdog && ooo_dispatch(config_.kind)) {
    bool work_waiting = false;
    for (const auto& buf : buffers_) work_waiting = work_waiting || !buf.empty();
    if (result.dispatched > 0 || !work_waiting) {
      watchdog_remaining_ = config_.watchdog_timeout;
    } else if (watchdog_remaining_ == 0 || --watchdog_remaining_ == 0) {
      result.watchdog_fired = true;
      ++dstats_.watchdog_flushes;
      watchdog_remaining_ = config_.watchdog_timeout;
    }
  }
  return result;
}

unsigned Scheduler::run_select(Cycle now, IssueEnv& env) {
  unsigned issued = 0;
  // The DAB is empty on the overwhelming majority of cycles; dab_live_
  // makes that the zero-work case.
  if (dab_live_ > 0) {
    for (ThreadId t = 0; t < thread_count_ && issued < issue_width_; ++t) {
      const auto tid = static_cast<ThreadId>((rr_start_ + t) % thread_count_);
      if (!dab_[tid]) continue;
      if (env.try_issue(*dab_[tid], /*from_dab=*/true)) {
        dab_[tid].reset();
        --dab_live_;
        ++issued;
        ++dstats_.dab_issues;
      }
    }
    // The paper's chosen DAB variant disables IQ selection while the DAB
    // holds instructions ("instructions in this buffer ... simply take
    // precedence over the instructions in the IQ").
    if (config_.dab_exclusive) return issued;
  }

  ready_scratch_.clear();
  iq_.collect_ready(ready_scratch_);
  for (std::uint32_t slot : ready_scratch_) {
    if (issued >= issue_width_) break;
    if (env.try_issue(iq_.at(slot), /*from_dab=*/false)) {
      iq_.issue(slot, now);
      ++issued;
    }
  }
  return issued;
}

void Scheduler::squash_younger(ThreadId tid, SeqNum after_seq) noexcept {
  auto& buf = buffers_.at(tid);
  while (!buf.empty() && buf.back().seq > after_seq) buf.pop_back();
  if (dab_.at(tid) && dab_.at(tid)->seq > after_seq) {
    dab_.at(tid).reset();
    --dab_live_;
  }
  iq_.squash_younger(tid, after_seq);
  // Replay restarts at an older sequence number.
  insert_seq_valid_.at(tid) = 0;
}

void Scheduler::flush() noexcept {
  for (auto& buf : buffers_) buf.clear();
  for (auto& slot : dab_) slot.reset();
  dab_live_ = 0;
  std::fill(insert_seq_valid_.begin(), insert_seq_valid_.end(), std::uint8_t{0});
  iq_.clear();
  watchdog_remaining_ = config_.watchdog_timeout;
}

bool Scheduler::dab_occupied(ThreadId tid) const { return dab_.at(tid).has_value(); }

std::uint32_t Scheduler::dab_occupancy() const noexcept { return dab_live_; }

void Scheduler::register_stats(obs::StatRegistry& registry,
                               const std::string& prefix) const {
  const DispatchStats* d = &dstats_;
  registry.counter(prefix + "dispatch.cycles", [d] { return d->cycles; });
  registry.counter(prefix + "dispatch.dispatched", [d] { return d->dispatched; });
  registry.counter(prefix + "dispatch.dispatched_nonready0",
                   [d] { return d->dispatched_by_nonready[0]; });
  registry.counter(prefix + "dispatch.dispatched_nonready1",
                   [d] { return d->dispatched_by_nonready[1]; });
  registry.counter(prefix + "dispatch.dispatched_nonready2",
                   [d] { return d->dispatched_by_nonready[2]; });
  registry.counter(prefix + "dispatch.no_dispatch_cycles",
                   [d] { return d->no_dispatch_cycles; });
  registry.ratio(prefix + "dispatch.all_threads_ndi_stall_fraction",
                 [d] { return d->all_threads_ndi_stall_cycles; },
                 [d] { return d->cycles; });
  registry.counter(prefix + "dispatch.ndi_blocked_thread_cycles",
                   [d] { return d->ndi_blocked_thread_cycles; });
  registry.counter(prefix + "dispatch.iq_full_thread_cycles",
                   [d] { return d->iq_full_thread_cycles; });
  registry.ratio(prefix + "dispatch.hdi_fraction_behind_ndi",
                 [d] { return d->behind_ndi_hdis; },
                 [d] { return d->behind_ndi_examined; });
  registry.counter(prefix + "dispatch.ooo_dispatches",
                   [d] { return d->ooo_dispatches; });
  registry.ratio(prefix + "dispatch.ooo_dependent_fraction",
                 [d] { return d->ooo_dispatches_dependent; },
                 [d] { return d->ooo_dispatches; });
  registry.counter(prefix + "dispatch.filtered_suppressed",
                   [d] { return d->filtered_suppressed; });
  registry.counter(prefix + "dispatch.dab_inserts", [d] { return d->dab_inserts; });
  registry.counter(prefix + "dispatch.dab_issues", [d] { return d->dab_issues; });
  registry.counter(prefix + "dispatch.watchdog_flushes",
                   [d] { return d->watchdog_flushes; });
  registry.counter(prefix + "dispatch.fault_forced_ndis",
                   [d] { return d->fault_forced_ndis; });
  registry.counter(prefix + "dispatch.fault_iq_denials",
                   [d] { return d->fault_iq_denials; });
  registry.counter(prefix + "dispatch.fault_dropped_dispatches",
                   [d] { return d->fault_dropped_dispatches; });

  const IqStats* q = &iq_.stats();
  registry.counter(prefix + "iq.dispatched", [q] { return q->dispatched; });
  registry.counter(prefix + "iq.issued", [q] { return q->issued; });
  registry.counter(prefix + "iq.broadcasts", [q] { return q->broadcasts; });
  registry.counter(prefix + "iq.wakeups", [q] { return q->wakeups; });
  registry.counter(prefix + "iq.comparator_ops", [q] { return q->comparator_ops; });
  registry.gauge(prefix + "iq.mean_occupancy", [q] { return q->mean_occupancy(); });
  registry.histogram(prefix + "iq.residency_cycles", &q->residency);
  const IssueQueue* iq = &iq_;
  registry.gauge(prefix + "iq.capacity",
                 [iq] { return static_cast<double>(iq->capacity()); });
  registry.gauge(prefix + "iq.comparators",
                 [iq] { return static_cast<double>(iq->layout().comparators()); });
}

std::uint32_t Scheduler::held_instructions(ThreadId tid) const {
  return buffer_size(tid) + (dab_.at(tid) ? 1u : 0u) + iq_.size_for(tid);
}

void Scheduler::state_io(persist::Archive& ar) {
  ar.section("scheduler");
  if (ar.saving()) iq_.save_state(ar); else iq_.load_state(ar);
  // Rename buffers serialize their logical contents (program order); the
  // ring's physical head position is unobservable.
  for (RenameBuffer& buf : buffers_) {
    std::uint64_t n = buf.size();
    ar.io(n);
    if (ar.saving()) {
      for (std::uint32_t i = 0; i < buf.size(); ++i) {
        SchedInst si = buf[i];
        io_sched_inst(ar, si);
      }
    } else {
      buf.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        SchedInst si{};
        io_sched_inst(ar, si);
        buf.push_back(si);
      }
    }
  }
  ar.io_sequence(dab_, [](persist::Archive& a, std::optional<SchedInst>& slot) {
    a.io_optional(slot, io_sched_inst);
  });
  ar.io(dab_live_);
  ar.io(block_reason_);
  ar.io(last_inserted_seq_);
  ar.io(insert_seq_valid_);
  ar.io(watchdog_remaining_);
  ar.io(rr_start_);
  ar.io(dstats_.cycles);
  ar.io(dstats_.dispatched);
  for (std::uint64_t& n : dstats_.dispatched_by_nonready) ar.io(n);
  ar.io(dstats_.no_dispatch_cycles);
  ar.io(dstats_.all_threads_ndi_stall_cycles);
  ar.io(dstats_.ndi_blocked_thread_cycles);
  ar.io(dstats_.iq_full_thread_cycles);
  ar.io(dstats_.behind_ndi_examined);
  ar.io(dstats_.behind_ndi_hdis);
  ar.io(dstats_.ooo_dispatches);
  ar.io(dstats_.ooo_dispatches_dependent);
  ar.io(dstats_.filtered_suppressed);
  ar.io(dstats_.dab_inserts);
  ar.io(dstats_.dab_issues);
  ar.io(dstats_.watchdog_flushes);
  ar.io(dstats_.fault_forced_ndis);
  ar.io(dstats_.fault_iq_denials);
  ar.io(dstats_.fault_dropped_dispatches);
}

MSIM_PERSIST_VIA_STATE_IO(Scheduler)

}  // namespace msim::core
