// The dynamic scheduling logic under study: per-thread rename (dispatch)
// buffers feeding an issue queue, under one of five dispatch policies
// (Sections 3, 4 and 6 of the paper):
//
//   kTraditional           in-order dispatch, 2 comparators per IQ entry
//   kTwoOpBlock            in-order dispatch, 1 comparator per IQ entry;
//                          an instruction with two non-ready sources (an
//                          NDI) blocks its whole thread at dispatch
//   kTwoOpBlockOoo         the paper's contribution: HDIs (dispatchable
//                          instructions hidden behind an NDI) may bypass
//                          it and dispatch out of program order
//   kTwoOpBlockOooFiltered the Section-4 ablation: only HDIs *independent*
//                          of every older in-buffer NDI may bypass
//   kTagElimination        related work (paper ref [5], Ernst & Austin):
//                          in-order dispatch into a statically partitioned
//                          queue of 0-/1-/2-comparator entries
//
// Out-of-order dispatch introduces a deadlock risk (Section 4); the
// scheduler implements both remedies: the deadlock-avoidance buffer (DAB)
// and the watchdog timer (the pipeline performs the actual flush).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fault_hooks.hpp"
#include "core/issue_queue.hpp"
#include "core/sched_types.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::core {

/// Queries the scheduler needs answered by the surrounding pipeline during
/// the dispatch phase.
class DispatchEnv {
 public:
  virtual ~DispatchEnv() = default;
  /// True when the physical register's value is available (or will be
  /// bypassed to instructions issuing this cycle).
  [[nodiscard]] virtual bool is_ready(PhysReg reg) const = 0;
  /// True when (tid, seq) is the oldest instruction in its thread's ROB,
  /// i.e. every older instruction of the thread has committed.
  [[nodiscard]] virtual bool is_oldest_in_rob(ThreadId tid, SeqNum seq) const = 0;
};

/// Receives issue offers during the select phase.  Returns true when the
/// instruction was accepted (function unit + memory-order constraints met).
class IssueEnv {
 public:
  virtual ~IssueEnv() = default;
  virtual bool try_issue(const SchedInst& inst, bool from_dab) = 0;
};

/// Counters for the paper's dispatch-related statistics.
struct DispatchStats {
  std::uint64_t cycles = 0;
  std::uint64_t dispatched = 0;
  /// Instructions dispatched with 0 / 1 / 2 distinct non-ready sources.
  std::uint64_t dispatched_by_nonready[3] = {0, 0, 0};
  std::uint64_t no_dispatch_cycles = 0;
  /// Section 3: cycles when the dispatch of ALL threads is stalled by
  /// instructions with two non-ready sources (the 2OP_BLOCK pathology).
  std::uint64_t all_threads_ndi_stall_cycles = 0;
  /// Thread-cycles with the thread's next in-order instruction blocked as
  /// an NDI / blocked by a full IQ.
  std::uint64_t ndi_blocked_thread_cycles = 0;
  std::uint64_t iq_full_thread_cycles = 0;
  /// Section 4: of the instructions piled up behind a blocking NDI, how
  /// many are HDIs (would be dispatchable)?  Sampled every blocked cycle.
  std::uint64_t behind_ndi_examined = 0;
  std::uint64_t behind_ndi_hdis = 0;
  /// Out-of-order dispatches (bypassed at least one NDI), and how many of
  /// those were directly or transitively dependent on a bypassed NDI.
  std::uint64_t ooo_dispatches = 0;
  std::uint64_t ooo_dispatches_dependent = 0;
  /// Ablation: HDIs whose dispatch the filtered policy suppressed.
  std::uint64_t filtered_suppressed = 0;
  std::uint64_t dab_inserts = 0;
  std::uint64_t dab_issues = 0;
  std::uint64_t watchdog_flushes = 0;
  /// Fault injection (src/robust/): classification decisions forced to
  /// NDI, IQ admissions denied by transient exhaustion, and instructions
  /// dropped by the sabotage fault.  All zero on a fault-free run.
  std::uint64_t fault_forced_ndis = 0;
  std::uint64_t fault_iq_denials = 0;
  std::uint64_t fault_dropped_dispatches = 0;

  [[nodiscard]] double all_stall_fraction() const noexcept {
    return cycles ? static_cast<double>(all_threads_ndi_stall_cycles) /
                        static_cast<double>(cycles)
                  : 0.0;
  }
  [[nodiscard]] double hdi_fraction_behind_ndi() const noexcept {
    return behind_ndi_examined ? static_cast<double>(behind_ndi_hdis) /
                                     static_cast<double>(behind_ndi_examined)
                               : 0.0;
  }
  [[nodiscard]] double ooo_dependent_fraction() const noexcept {
    return ooo_dispatches ? static_cast<double>(ooo_dispatches_dependent) /
                                static_cast<double>(ooo_dispatches)
                          : 0.0;
  }
};

/// Result of one dispatch phase.
struct DispatchCycleResult {
  std::uint32_t dispatched = 0;
  bool watchdog_fired = false;
};

class Scheduler {
 public:
  Scheduler(const SchedulerConfig& config, unsigned thread_count,
            unsigned dispatch_width, unsigned issue_width);

  // ---- rename side -------------------------------------------------------
  [[nodiscard]] bool buffer_has_space(ThreadId tid) const;
  [[nodiscard]] std::uint32_t buffer_size(ThreadId tid) const;
  /// Inserts a renamed instruction; program order per thread is enforced.
  void insert(const SchedInst& inst);

  // ---- per-cycle phases --------------------------------------------------
  /// Dispatch phase: moves instructions from rename buffers into the IQ
  /// (and possibly the DAB) under the configured policy.
  DispatchCycleResult run_dispatch(Cycle now, const DispatchEnv& env);

  /// Wakeup: result-tag broadcast into the IQ CAM.
  void broadcast(PhysReg tag) noexcept { iq_.broadcast(tag); }

  /// Select phase: offers ready instructions (DAB first, then the IQ in
  /// oldest-first order) to `env`, up to `issue_width` acceptances.
  /// Returns the number issued.
  unsigned run_select(Cycle now, IssueEnv& env);

  /// Squashes all scheduler state (watchdog flush path).
  void flush() noexcept;

  /// Partial squash (FLUSH fetch policy): removes every instruction of
  /// `tid` younger than `after_seq` from the rename buffer, the IQ and the
  /// DAB.  Rename-order expectations are reset for the thread.
  void squash_younger(ThreadId tid, SeqNum after_seq) noexcept;

  /// Occupancy bookkeeping; call once per simulated cycle.
  void tick_stats() noexcept { iq_.tick_stats(); }

  /// Zeroes dispatch and IQ statistics (post-warm-up reset).
  void reset_stats() {
    dstats_ = DispatchStats{};
    iq_.reset_stats();
  }

  // ---- observability -----------------------------------------------------
  /// Registers every scheduler metric under `prefix` (e.g. "scheduler.").
  /// The scheduler must outlive the registry's snapshots.
  void register_stats(obs::StatRegistry& registry, const std::string& prefix) const;

  /// Routes dispatch-side lifecycle events (dispatch, DAB insert) into the
  /// tracer; nullptr (the default) disables recording.
  void set_tracer(obs::InstTracer* tracer) noexcept { tracer_ = tracer; }

  /// Consults `hooks` at readiness-classification and IQ-admission points;
  /// nullptr (the default) is the fault-free machine.  Not owned; must
  /// outlive the scheduler.
  void set_fault_hooks(const FaultHooks* hooks) noexcept { faults_ = hooks; }

  // ---- introspection -----------------------------------------------------
  [[nodiscard]] const SchedulerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const IssueQueue& iq() const noexcept { return iq_; }
  [[nodiscard]] const DispatchStats& dispatch_stats() const noexcept { return dstats_; }
  [[nodiscard]] bool dab_occupied(ThreadId tid) const;
  /// The instruction parked in `tid`'s DAB slot, if any (invariant checks).
  [[nodiscard]] const std::optional<SchedInst>& dab_inst(ThreadId tid) const {
    return dab_.at(tid);
  }
  /// Instructions currently parked in the deadlock-avoidance buffer.
  [[nodiscard]] std::uint32_t dab_occupancy() const noexcept;
  /// Why `tid` could not dispatch its next instruction in the most recent
  /// dispatch phase (kNone after a successful dispatch).
  [[nodiscard]] DispatchBlock block_reason(ThreadId tid) const {
    return block_reason_.at(tid);
  }
  /// Total instructions held (buffers + IQ + DAB); used by ICOUNT fetch.
  [[nodiscard]] std::uint32_t held_instructions(ThreadId tid) const;

  /// Checkpoint support: rename buffers (logical order), DAB, program-order
  /// guards, watchdog countdown, round-robin origin, statistics and the
  /// issue queue.  Per-dispatch-phase scratch (scan state, ready scratch)
  /// is rebuilt each cycle and not serialized.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  struct ScanState {
    std::uint32_t pos = 0;        ///< next buffer index to examine
    std::uint32_t examined = 0;
    bool exhausted = false;
    bool saw_iq_full = false;
    bool saw_ndi = false;
    /// Destinations of bypassed NDIs and of instructions (dispatched or
    /// suppressed) that transitively depend on one.
    std::vector<PhysReg> tainted;

    /// Per-cycle reset that keeps tainted's capacity (this runs for every
    /// thread every cycle; reallocating the vector each time showed up in
    /// profiles).
    void reset() noexcept {
      pos = 0;
      examined = 0;
      exhausted = false;
      saw_iq_full = false;
      saw_ndi = false;
      tainted.clear();
    }
  };

  /// Fixed-capacity circular buffer holding one thread's renamed-but-not-
  /// dispatched instructions in program order.  Dispatch consumes from the
  /// front (or, under out-of-order dispatch, from the middle near the
  /// front) every cycle, which on a std::vector meant shifting the whole
  /// tail; here the common front-pop is O(1) and a middle erase shifts
  /// only the handful of bypassed entries in front of the dispatch point.
  class RenameBuffer {
   public:
    void init(std::uint32_t capacity) {
      mask_ = 1;
      while (mask_ < capacity) mask_ <<= 1;
      data_.resize(mask_);
      --mask_;
      head_ = size_ = 0;
    }
    [[nodiscard]] std::uint32_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] const SchedInst& operator[](std::uint32_t i) const noexcept {
      return data_[(head_ + i) & mask_];
    }
    [[nodiscard]] const SchedInst& front() const noexcept { return (*this)[0]; }
    [[nodiscard]] const SchedInst& back() const noexcept { return (*this)[size_ - 1]; }
    void push_back(const SchedInst& inst) noexcept {
      data_[(head_ + size_) & mask_] = inst;
      ++size_;
    }
    void pop_front() noexcept {
      head_ = (head_ + 1) & mask_;
      --size_;
    }
    void pop_back() noexcept { --size_; }
    /// Removes the element at `i`, shifting the (short) front run [0, i)
    /// back by one; program order of the survivors is preserved.
    void erase_at(std::uint32_t i) noexcept {
      for (; i > 0; --i) data_[(head_ + i) & mask_] = data_[(head_ + i - 1) & mask_];
      pop_front();
    }
    void clear() noexcept { head_ = size_ = 0; }

   private:
    std::vector<SchedInst> data_;
    std::uint32_t mask_ = 0;
    std::uint32_t head_ = 0;
    std::uint32_t size_ = 0;
  };

  /// Distinct non-ready register sources of `inst` under `env`.
  [[nodiscard]] static unsigned non_ready_sources(const SchedInst& inst,
                                                  const DispatchEnv& env);
  /// non_ready_sources with the forced-NDI fault folded in (dispatch-side
  /// classification only; the DAB-rescue readiness check stays truthful).
  [[nodiscard]] unsigned classify_non_ready(const SchedInst& inst,
                                            const DispatchEnv& env, Cycle now);
  /// True when the IQ has no free entry for `non_ready` comparators, or a
  /// transient-exhaustion fault pretends so this cycle.
  [[nodiscard]] bool iq_denies(unsigned non_ready, Cycle now);
  [[nodiscard]] static bool reads_any(const SchedInst& inst,
                                      const std::vector<PhysReg>& regs);

  /// Attempts one dispatch for thread `tid`; returns true on success.
  bool try_dispatch_one(ThreadId tid, Cycle now, const DispatchEnv& env);
  void dispatch_into_iq(const SchedInst& inst, const DispatchEnv& env, Cycle now);
  /// Samples the HDI-behind-NDI statistic for a thread blocked at its head.
  void sample_behind_ndi(ThreadId tid, const DispatchEnv& env);

  SchedulerConfig config_;
  unsigned thread_count_;
  unsigned dispatch_width_;
  unsigned issue_width_;

  IssueQueue iq_;
  std::vector<RenameBuffer> buffers_;                 ///< per thread, program order
  std::vector<std::optional<SchedInst>> dab_;         ///< one slot per thread
  std::uint32_t dab_live_ = 0;                        ///< occupied DAB slots
  std::vector<ScanState> scan_;                       ///< per thread, per cycle
  std::vector<DispatchBlock> block_reason_;           ///< per thread, per cycle
  std::vector<SeqNum> last_inserted_seq_;             ///< program-order check
  std::vector<std::uint8_t> insert_seq_valid_;        ///< last_inserted_seq_ meaningful?
  std::vector<std::uint32_t> ready_scratch_;

  std::uint32_t watchdog_remaining_;
  unsigned rr_start_ = 0;  ///< rotating round-robin origin
  DispatchStats dstats_;
  obs::InstTracer* tracer_ = nullptr;     ///< not owned; nullptr = tracing off
  const FaultHooks* faults_ = nullptr;    ///< not owned; nullptr = fault-free
};

}  // namespace msim::core
