#include "core/issue_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace msim::core {

IssueQueue::IssueQueue(const IqLayout& layout)
    : layout_(layout), capacity_(layout.total()) {
  MSIM_CHECK(capacity_ > 0);
  entries_.resize(capacity_);
  // Lay entries out class-major and seed the per-class free lists.
  std::uint32_t slot = 0;
  for (unsigned cmp = 0; cmp <= isa::kMaxSources; ++cmp) {
    const std::uint32_t count = layout_.entries_by_comparators[cmp];
    if (count > 0) max_cmp_ = static_cast<std::uint8_t>(cmp);
    free_by_cmp_[cmp].reserve(count);
    for (std::uint32_t i = 0; i < count; ++i, ++slot) {
      entries_[slot].comparators = static_cast<std::uint8_t>(cmp);
      free_by_cmp_[cmp].push_back(slot);
    }
  }
  MSIM_CHECK(max_cmp_ >= 1);  // a queue of only 0-comparator entries is unusable
}

bool IssueQueue::has_entry_for(unsigned non_ready) const noexcept {
  for (unsigned cmp = non_ready; cmp <= isa::kMaxSources; ++cmp) {
    if (!free_by_cmp_[cmp].empty()) return true;
  }
  return false;
}

std::uint32_t IssueQueue::dispatch(const SchedInst& inst,
                                   std::span<const PhysReg> waiting, Cycle now) {
  MSIM_CHECK(waiting.size() <= isa::kMaxSources);
  // Smallest adequate entry class first, to save the big entries for the
  // instructions that need them.
  std::uint32_t slot = capacity_;
  for (unsigned cmp = static_cast<unsigned>(waiting.size());
       cmp <= isa::kMaxSources; ++cmp) {
    if (!free_by_cmp_[cmp].empty()) {
      slot = free_by_cmp_[cmp].back();
      free_by_cmp_[cmp].pop_back();
      break;
    }
  }
  MSIM_CHECK(slot < capacity_);  // caller must check has_entry_for first

  Entry& e = entries_[slot];
  e.inst = inst;
  e.pending = 0;
  e.waiting[0] = e.waiting[1] = kNoPhysReg;
  for (std::size_t i = 0; i < waiting.size(); ++i) {
    MSIM_CHECK(waiting[i] != kNoPhysReg);
    e.waiting[i] = waiting[i];
    ++e.pending;
  }
  MSIM_CHECK(e.pending <= e.comparators);
  e.dispatched_at = now;
  e.age_stamp = next_stamp_++;
  e.valid = true;
  ++live_;
  ++per_thread_.at(inst.tid);
  ++stats_.dispatched;
  return slot;
}

void IssueQueue::broadcast(PhysReg tag) noexcept {
  ++stats_.broadcasts;
  if (live_ == 0) return;
  for (Entry& e : entries_) {
    if (!e.valid) continue;
    // Every comparator of an occupied entry observes the broadcast; that
    // is the CAM energy the reduced-tag designs halve.
    stats_.comparator_ops += e.comparators;
    if (e.pending == 0) continue;
    for (PhysReg& w : e.waiting) {
      if (w == tag) {
        w = kNoPhysReg;
        MSIM_CHECK(e.pending > 0);
        --e.pending;
        ++stats_.wakeups;
      }
    }
  }
}

void IssueQueue::collect_ready(std::vector<std::uint32_t>& out) const {
  const std::size_t first = out.size();
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    const Entry& e = entries_[i];
    if (e.valid && e.pending == 0) out.push_back(i);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return entries_[a].age_stamp < entries_[b].age_stamp;
            });
}

const SchedInst& IssueQueue::at(std::uint32_t slot) const {
  MSIM_CHECK(slot < capacity_ && entries_[slot].valid);
  return entries_[slot].inst;
}

bool IssueQueue::ready(std::uint32_t slot) const {
  MSIM_CHECK(slot < capacity_ && entries_[slot].valid);
  return entries_[slot].pending == 0;
}

void IssueQueue::release_slot(std::uint32_t slot) noexcept {
  Entry& e = entries_[slot];
  e.valid = false;
  free_by_cmp_[e.comparators].push_back(slot);
  MSIM_CHECK(live_ > 0);
  --live_;
  MSIM_CHECK(per_thread_.at(e.inst.tid) > 0);
  --per_thread_.at(e.inst.tid);
}

void IssueQueue::issue(std::uint32_t slot, Cycle now) {
  MSIM_CHECK(slot < capacity_);
  Entry& e = entries_[slot];
  MSIM_CHECK(e.valid && e.pending == 0);
  stats_.residency.add(static_cast<double>(now - e.dispatched_at));
  ++stats_.issued;
  release_slot(slot);
}

void IssueQueue::squash_younger(ThreadId tid, SeqNum after_seq) noexcept {
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    Entry& e = entries_[i];
    if (e.valid && e.inst.tid == tid && e.inst.seq > after_seq) {
      release_slot(i);
    }
  }
}

void IssueQueue::clear() noexcept {
  for (auto& free_list : free_by_cmp_) free_list.clear();
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    entries_[i].valid = false;
    free_by_cmp_[entries_[i].comparators].push_back(i);
  }
  live_ = 0;
  per_thread_.fill(0);
}

void IssueQueue::tick_stats() noexcept {
  stats_.occupancy_integral += live_;
  ++stats_.occupancy_samples;
}

}  // namespace msim::core
