#include "core/issue_queue.hpp"

#include <algorithm>

#include "common/archive.hpp"
#include "common/check.hpp"
#include "core/state_io.hpp"

namespace msim::core {

IssueQueue::IssueQueue(const IqLayout& layout)
    : layout_(layout), capacity_(layout.total()) {
  MSIM_CHECK(capacity_ > 0);
  inst_.resize(capacity_);
  pending_.resize(capacity_, 0);
  comparators_.resize(capacity_, 0);
  valid_.resize(capacity_, 0);
  gen_.resize(capacity_, 0);
  dispatched_at_.resize(capacity_, 0);
  age_stamp_.resize(capacity_, 0);
  ready_set_.reserve(capacity_);
  // Lay entries out class-major and seed the per-class free lists.
  std::uint32_t slot = 0;
  for (unsigned cmp = 0; cmp <= isa::kMaxSources; ++cmp) {
    const std::uint32_t count = layout_.entries_by_comparators[cmp];
    if (count > 0) max_cmp_ = static_cast<std::uint8_t>(cmp);
    free_by_cmp_[cmp].reserve(count);
    for (std::uint32_t i = 0; i < count; ++i, ++slot) {
      comparators_[slot] = static_cast<std::uint8_t>(cmp);
      free_by_cmp_[cmp].push_back(slot);
    }
  }
  MSIM_CHECK(max_cmp_ >= 1);  // a queue of only 0-comparator entries is unusable
}

bool IssueQueue::has_entry_for(unsigned non_ready) const noexcept {
  for (unsigned cmp = non_ready; cmp <= isa::kMaxSources; ++cmp) {
    if (!free_by_cmp_[cmp].empty()) return true;
  }
  return false;
}

std::uint32_t IssueQueue::dispatch(const SchedInst& inst,
                                   std::span<const PhysReg> waiting, Cycle now) {
  MSIM_CHECK(waiting.size() <= isa::kMaxSources);
  // Smallest adequate entry class first, to save the big entries for the
  // instructions that need them.
  std::uint32_t slot = capacity_;
  for (unsigned cmp = static_cast<unsigned>(waiting.size());
       cmp <= isa::kMaxSources; ++cmp) {
    if (!free_by_cmp_[cmp].empty()) {
      slot = free_by_cmp_[cmp].back();
      free_by_cmp_[cmp].pop_back();
      break;
    }
  }
  MSIM_CHECK(slot < capacity_);  // caller must check has_entry_for first

  inst_[slot] = inst;
  pending_[slot] = static_cast<std::uint8_t>(waiting.size());
  MSIM_CHECK(pending_[slot] <= comparators_[slot]);
  dispatched_at_[slot] = now;
  age_stamp_[slot] = next_stamp_++;
  valid_[slot] = 1;
  const std::uint32_t gen = gen_[slot];
  for (const PhysReg tag : waiting) {
    MSIM_CHECK(tag != kNoPhysReg);
    if (tag >= waiters_.size()) waiters_.resize(tag + 1u);
    waiters_[tag].push_back(WaitNode{slot, gen});
  }
  if (waiting.empty()) mark_ready(slot);
  ++live_;
  live_cmp_ += comparators_[slot];
  ++per_thread_.at(inst.tid);
  ++stats_.dispatched;
  return slot;
}

void IssueQueue::broadcast(PhysReg tag) noexcept {
  ++stats_.broadcasts;
  // Every comparator of an occupied entry observes the broadcast; that is
  // the CAM energy the reduced-tag designs halve.  The sum over occupied
  // entries is maintained incrementally instead of being re-derived by a
  // queue scan.
  stats_.comparator_ops += live_cmp_;
  if (tag >= waiters_.size()) return;
  SmallVec<WaitNode, 4>& list = waiters_[tag];
  for (const WaitNode node : list) {
    // A generation mismatch means the occupant this node was parked for has
    // issued or been squashed since (and the slot possibly reused): dead
    // node, skip.  A match implies the source is still outstanding, because
    // the only event that clears it is this very broadcast.
    if (gen_[node.slot] != node.gen) continue;
    MSIM_CHECK(valid_[node.slot] && pending_[node.slot] > 0);
    ++stats_.wakeups;
    if (--pending_[node.slot] == 0) mark_ready(node.slot);
  }
  list.clear();
}

void IssueQueue::mark_ready(std::uint32_t slot) noexcept {
  ready_set_.push_back(ReadyNode{age_stamp_[slot], slot, gen_[slot]});
}

void IssueQueue::collect_ready(std::vector<std::uint32_t>& out) const {
  // Compact away nodes whose entry has left the queue since going ready
  // (issued last cycle, or squashed), then order survivors oldest first.
  // Age stamps are unique, so this order is exactly what a full-queue scan
  // sorted by age would produce.
  std::size_t keep = 0;
  for (const ReadyNode node : ready_set_) {
    if (gen_[node.slot] == node.gen) ready_set_[keep++] = node;
  }
  ready_set_.resize(keep);
  // Insertion sort: compaction preserves order, so only the nodes appended
  // since the last call are out of place and the array is nearly sorted.
  // Age stamps are unique, making any correct sort produce the same order.
  for (std::size_t i = 1; i < keep; ++i) {
    const ReadyNode node = ready_set_[i];
    std::size_t j = i;
    for (; j > 0 && ready_set_[j - 1].age_stamp > node.age_stamp; --j) {
      ready_set_[j] = ready_set_[j - 1];
    }
    ready_set_[j] = node;
  }
  out.reserve(out.size() + keep);
  for (const ReadyNode node : ready_set_) out.push_back(node.slot);
}

const SchedInst& IssueQueue::at(std::uint32_t slot) const {
  MSIM_CHECK(slot < capacity_ && valid_[slot]);
  return inst_[slot];
}

bool IssueQueue::ready(std::uint32_t slot) const {
  MSIM_CHECK(slot < capacity_ && valid_[slot]);
  return pending_[slot] == 0;
}

void IssueQueue::release_slot(std::uint32_t slot) noexcept {
  valid_[slot] = 0;
  // Invalidate every wakeup-list and ready-set node parked for this
  // occupancy; they are skipped lazily wherever encountered.
  ++gen_[slot];
  free_by_cmp_[comparators_[slot]].push_back(slot);
  MSIM_CHECK(live_ > 0);
  --live_;
  live_cmp_ -= comparators_[slot];
  MSIM_CHECK(per_thread_.at(inst_[slot].tid) > 0);
  --per_thread_.at(inst_[slot].tid);
}

void IssueQueue::issue(std::uint32_t slot, Cycle now) {
  MSIM_CHECK(slot < capacity_);
  MSIM_CHECK(valid_[slot] && pending_[slot] == 0);
  stats_.residency.add(static_cast<double>(now - dispatched_at_[slot]));
  ++stats_.issued;
  release_slot(slot);
}

void IssueQueue::squash_younger(ThreadId tid, SeqNum after_seq) noexcept {
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    if (valid_[i] && inst_[i].tid == tid && inst_[i].seq > after_seq) {
      release_slot(i);
    }
  }
}

void IssueQueue::clear() noexcept {
  for (auto& free_list : free_by_cmp_) free_list.clear();
  for (std::uint32_t i = 0; i < capacity_; ++i) {
    valid_[i] = 0;
    ++gen_[i];
    free_by_cmp_[comparators_[i]].push_back(i);
  }
  ready_set_.clear();
  live_ = 0;
  live_cmp_ = 0;
  per_thread_.fill(0);
}

void IssueQueue::tick_stats() noexcept {
  stats_.occupancy_integral += live_;
  ++stats_.occupancy_samples;
}

void IssueQueue::state_io(persist::Archive& ar) {
  ar.section("issue-queue");
  // Shape (capacity, comparator layout) is construction-time configuration;
  // serialize it for verification so a checkpoint from a differently shaped
  // queue fails loudly.
  std::uint32_t capacity = capacity_;
  ar.io(capacity);
  std::array<std::uint32_t, isa::kMaxSources + 1> by_cmp =
      layout_.entries_by_comparators;
  for (std::uint32_t& n : by_cmp) ar.io(n);
  if (!ar.saving() &&
      (capacity != capacity_ || by_cmp != layout_.entries_by_comparators)) {
    throw persist::PersistError(
        "checkpoint: issue-queue shape mismatch (different iq_entries or "
        "scheduler kind)");
  }
  ar.io(live_);
  ar.io(live_cmp_);
  ar.io(next_stamp_);
  ar.io_sequence(inst_, io_sched_inst);
  ar.io(pending_);
  ar.io(valid_);
  ar.io(gen_);
  ar.io(dispatched_at_);
  ar.io(age_stamp_);
  ar.io_sequence(waiters_, [](persist::Archive& a, SmallVec<WaitNode, 4>& w) {
    std::uint64_t n = w.size();
    a.io(n);
    if (a.saving()) {
      for (std::uint64_t i = 0; i < n; ++i) {
        a.io(w[static_cast<std::size_t>(i)].slot);
        a.io(w[static_cast<std::size_t>(i)].gen);
      }
    } else {
      w.clear();
      w.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        WaitNode node{};
        a.io(node.slot);
        a.io(node.gen);
        w.push_back(node);
      }
    }
  });
  ar.io_sequence(ready_set_, [](persist::Archive& a, ReadyNode& r) {
    a.io(r.age_stamp);
    a.io(r.slot);
    a.io(r.gen);
  });
  for (std::vector<std::uint32_t>& fl : free_by_cmp_) ar.io(fl);
  for (std::uint32_t& n : per_thread_) ar.io(n);
  ar.io(stats_.dispatched);
  ar.io(stats_.issued);
  ar.io(stats_.broadcasts);
  ar.io(stats_.wakeups);
  ar.io(stats_.comparator_ops);
  ar.io(stats_.occupancy_integral);
  ar.io(stats_.occupancy_samples);
  if (ar.saving()) stats_.residency.save_state(ar);
  else stats_.residency.load_state(ar);
}

MSIM_PERSIST_VIA_STATE_IO(IssueQueue)

}  // namespace msim::core
