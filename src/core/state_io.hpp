// Shared persist::Archive field streamers for the instruction records that
// appear in many serialized structures (issue queue, dispatch buffers, ROB,
// LSQ, fetch queues).  Kept here so every holder serializes the same field
// list in the same order.
#pragma once

#include "common/archive.hpp"
#include "core/sched_types.hpp"
#include "isa/instruction.hpp"

namespace msim::core {

inline void io_dyn_inst(persist::Archive& ar, isa::DynInst& d) {
  ar.io(d.seq);
  ar.io(d.pc);
  ar.io(d.next_pc);
  ar.io(d.mem_addr);
  ar.io(d.op);
  ar.io(d.dest);
  for (ArchReg& s : d.src) ar.io(s);
  ar.io(d.taken);
}

inline void io_sched_inst(persist::Archive& ar, SchedInst& si) {
  ar.io(si.tid);
  ar.io(si.seq);
  ar.io(si.op);
  for (PhysReg& s : si.src) ar.io(s);
  ar.io(si.dest);
}

}  // namespace msim::core
