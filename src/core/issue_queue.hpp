// Issue queue timing model with a configurable mix of tag comparators per
// entry.
//
// The traditional design gives every entry two comparators; the 2OP_BLOCK
// family gives every entry one (halving the CAM match hardware); the
// tag-elimination design of Ernst & Austin (ISCA 2002), which the paper's
// related work builds on, statically partitions the queue into groups of
// entries with zero, one and two comparators.  This model supports all of
// them: entries are grouped by comparator count, and a dispatching
// instruction takes the *smallest adequate* free entry for its number of
// non-ready sources (exactly the paper's "appropriate IQ entry" notion in
// its Dispatchable Instruction definition).
//
// The model also accounts CAM activity: every tag broadcast drives every
// comparator of every occupied entry, which is precisely the wakeup power
// and delay cost the reduced-tag designs attack.
//
// Simulation-speed architecture (docs/PERFORMANCE.md): the *model* above is
// a CAM scan, but the *implementation* is event-driven so host cost scales
// with wakeup events, not queue capacity.  Each physical register carries a
// wakeup list of waiting (slot, generation) nodes; a broadcast drains one
// list instead of scanning every entry, and the per-broadcast CAM energy is
// charged from an incrementally maintained live-comparator sum.  Entries
// whose last source arrives join an explicit ready set, so select reads
// only ready instructions.  Slot reuse is made safe by per-slot generation
// counters: nodes left behind by an issued or squashed occupant are lazily
// discarded when their generation no longer matches.  All of this is
// observationally bit-identical to the scan (ready order is by unique age
// stamp; statistics are order-independent sums) — tests/test_perf_paths.cpp
// holds the implementation to that contract against a reference scan model.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/small_vector.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "core/sched_types.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::core {

/// How many IQ entries carry 0, 1 and 2 tag comparators.
struct IqLayout {
  std::array<std::uint32_t, isa::kMaxSources + 1> entries_by_comparators{};

  [[nodiscard]] std::uint32_t total() const noexcept {
    std::uint32_t sum = 0;
    for (const std::uint32_t n : entries_by_comparators) sum += n;
    return sum;
  }
  /// Total comparators in the queue (the CAM hardware cost).
  [[nodiscard]] std::uint32_t comparators() const noexcept {
    std::uint32_t sum = 0;
    for (unsigned c = 0; c <= isa::kMaxSources; ++c) {
      sum += c * entries_by_comparators[c];
    }
    return sum;
  }

  /// All `capacity` entries have `comparators` comparators.
  static IqLayout uniform(std::uint32_t capacity, std::uint8_t comparators) {
    IqLayout layout;
    layout.entries_by_comparators.at(comparators) = capacity;
    return layout;
  }
  /// Ernst & Austin-style static partition: by default 1/4 of the entries
  /// have no comparators, 1/2 have one, 1/4 have two.
  static IqLayout tag_eliminated(std::uint32_t capacity) {
    IqLayout layout;
    layout.entries_by_comparators[0] = capacity / 4;
    layout.entries_by_comparators[2] = capacity / 4;
    layout.entries_by_comparators[1] =
        capacity - layout.entries_by_comparators[0] - layout.entries_by_comparators[2];
    return layout;
  }
};

struct IqStats {
  std::uint64_t dispatched = 0;
  std::uint64_t issued = 0;
  std::uint64_t broadcasts = 0;          ///< result tags driven onto the buses
  std::uint64_t wakeups = 0;             ///< tag matches that cleared a source
  std::uint64_t comparator_ops = 0;      ///< comparators fired across all broadcasts
  std::uint64_t occupancy_integral = 0;  ///< sum over cycles of occupancy
  std::uint64_t occupancy_samples = 0;
  Histogram residency{64, 4.0};          ///< dispatch->issue cycles

  [[nodiscard]] double mean_occupancy() const noexcept {
    return occupancy_samples ? static_cast<double>(occupancy_integral) /
                                   static_cast<double>(occupancy_samples)
                             : 0.0;
  }
  [[nodiscard]] double mean_residency() const noexcept {
    return residency.approximate_mean();
  }
};

class IssueQueue {
 public:
  explicit IssueQueue(const IqLayout& layout);
  /// Convenience: uniform layout (2 = traditional, 1 = 2OP_BLOCK family).
  IssueQueue(std::uint32_t capacity, std::uint8_t comparators_per_entry)
      : IssueQueue(IqLayout::uniform(capacity, comparators_per_entry)) {}

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return live_; }
  [[nodiscard]] bool full() const noexcept { return live_ == capacity_; }
  [[nodiscard]] std::uint32_t free_entries() const noexcept { return capacity_ - live_; }
  /// Entries currently held by thread `tid` (feeds the ICOUNT fetch policy).
  [[nodiscard]] std::uint32_t size_for(ThreadId tid) const { return per_thread_.at(tid); }
  [[nodiscard]] const IqLayout& layout() const noexcept { return layout_; }

  /// Largest comparator count of any entry (2 for traditional/tag-elim,
  /// 1 for the 2OP_BLOCK family): the NDI threshold.
  [[nodiscard]] std::uint8_t max_comparators() const noexcept { return max_cmp_; }

  /// True when a free entry with at least `non_ready` comparators exists --
  /// the "appropriate IQ entry" condition of the paper's DI definition.
  [[nodiscard]] bool has_entry_for(unsigned non_ready) const noexcept;

  /// Inserts a dispatched instruction whose still-unready source tags are
  /// `waiting` (distinct tags).  Picks the smallest adequate free entry;
  /// has_entry_for(waiting.size()) must be true.  Returns the slot index.
  std::uint32_t dispatch(const SchedInst& inst, std::span<const PhysReg> waiting,
                         Cycle now);

  /// Tag broadcast: wakes every entry waiting on `tag` and accounts the
  /// CAM activity of the modeled full-queue comparator scan.
  void broadcast(PhysReg tag) noexcept;

  /// Appends the slots of all ready (fully woken) entries, ordered oldest
  /// dispatch first, to `out`.  Idempotent within a cycle.
  void collect_ready(std::vector<std::uint32_t>& out) const;

  [[nodiscard]] const SchedInst& at(std::uint32_t slot) const;
  /// True when the entry at `slot` has no outstanding source tags.
  [[nodiscard]] bool ready(std::uint32_t slot) const;

  /// Removes an issued instruction and records its residency.
  void issue(std::uint32_t slot, Cycle now);

  /// Removes every entry of `tid` younger than `after_seq` (partial squash,
  /// used by the FLUSH fetch policy).  Residency is not recorded.
  void squash_younger(ThreadId tid, SeqNum after_seq) noexcept;

  /// Squashes every entry (watchdog flush).  Residency is not recorded.
  void clear() noexcept;

  /// Accounts one cycle of occupancy statistics; call once per cycle.
  void tick_stats() noexcept;

  [[nodiscard]] const IqStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = IqStats{}; }

  /// Checkpoint support: the SoA entry arrays, wakeup lists, ready set,
  /// free lists, generation counters and statistics all round-trip, so a
  /// restored queue replays the exact same wakeup and select behaviour.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  /// A consumer parked on a physical register's wakeup list.  `gen` pins
  /// the slot occupancy the node was created for: if the slot has been
  /// issued, squashed or reused since, the generations differ and the node
  /// is dead weight to be skipped.
  struct WaitNode {
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// A fully woken entry awaiting select.  Carries its age stamp so the
  /// ready set can be ordered oldest-first without touching the entries.
  struct ReadyNode {
    std::uint64_t age_stamp;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  void release_slot(std::uint32_t slot) noexcept;
  void mark_ready(std::uint32_t slot) noexcept;

  IqLayout layout_;
  std::uint32_t capacity_;
  std::uint8_t max_cmp_ = 0;
  std::uint32_t live_ = 0;
  /// Sum of comparators over occupied entries: the CAM energy one
  /// broadcast costs (kept incrementally; see broadcast()).
  std::uint32_t live_cmp_ = 0;
  std::uint64_t next_stamp_ = 0;

  // Entry state, structure-of-arrays: the hot paths (wakeup, ready
  // collection) each touch exactly one narrow array instead of striding
  // over fat Entry records.
  std::vector<SchedInst> inst_;
  std::vector<std::uint8_t> pending_;
  std::vector<std::uint8_t> comparators_;  ///< fixed per slot by the layout
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint32_t> gen_;         ///< bumped on every release
  std::vector<Cycle> dispatched_at_;
  std::vector<std::uint64_t> age_stamp_;   ///< global dispatch order

  /// One wakeup list per physical register, grown lazily to the largest
  /// tag ever parked on.  Lists are nearly always tiny, so they live in
  /// SmallVec inline storage (no per-tag heap block) and keep any spilled
  /// capacity across drains.
  std::vector<SmallVec<WaitNode, 4>> waiters_;
  /// Entries with pending == 0, possibly including stale nodes for slots
  /// released since; compacted in place by collect_ready.
  mutable std::vector<ReadyNode> ready_set_;

  /// One free list per comparator class (LIFO, seeded in ascending slot
  /// order; rebuilt the same way by clear()).
  std::array<std::vector<std::uint32_t>, isa::kMaxSources + 1> free_by_cmp_;
  std::array<std::uint32_t, kMaxThreads> per_thread_{};
  IqStats stats_;
};

}  // namespace msim::core
