// Shared vocabulary types for the scheduler designs under study.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace msim::core {

/// The scheduler designs compared in the paper.
enum class SchedulerKind : std::uint8_t {
  /// Conventional issue queue: two tag comparators per entry, strictly
  /// in-order dispatch within each thread.  The paper's baseline.
  kTraditional,
  /// Sharkey & Ponomarev (HPCA'06): one comparator per entry; an
  /// instruction with two non-ready sources blocks its thread at dispatch.
  kTwoOpBlock,
  /// This paper's contribution: 2OP_BLOCK plus out-of-order dispatch of
  /// Hidden Dispatchable Instructions past blocked NDIs.
  kTwoOpBlockOoo,
  /// Ablation from Section 4: idealized zero-overhead filtering that only
  /// dispatches HDIs *independent* of every older in-buffer NDI.
  kTwoOpBlockOooFiltered,
  /// Related work (Ernst & Austin, ISCA 2002): a statically partitioned
  /// queue with 0-, 1- and 2-comparator entries and in-order dispatch; an
  /// instruction waits for a free entry with enough comparators.
  kTagElimination,
};

/// Deadlock handling for the out-of-order dispatch variants (Section 4).
enum class DeadlockMode : std::uint8_t {
  /// Deadlock-avoidance buffer: the paper's preferred design.
  kAvoidanceBuffer,
  /// Watchdog timer + full pipeline flush & replay.
  kWatchdog,
};

[[nodiscard]] std::string_view scheduler_kind_name(SchedulerKind kind) noexcept;
[[nodiscard]] std::string_view deadlock_mode_name(DeadlockMode mode) noexcept;

/// True for the kinds whose issue queue has one comparator per entry
/// (the 2OP_BLOCK family).
[[nodiscard]] constexpr bool reduced_tag(SchedulerKind kind) noexcept {
  return kind == SchedulerKind::kTwoOpBlock ||
         kind == SchedulerKind::kTwoOpBlockOoo ||
         kind == SchedulerKind::kTwoOpBlockOooFiltered;
}

/// True for the kinds that dispatch out of program order within a thread.
[[nodiscard]] constexpr bool ooo_dispatch(SchedulerKind kind) noexcept {
  return kind == SchedulerKind::kTwoOpBlockOoo ||
         kind == SchedulerKind::kTwoOpBlockOooFiltered;
}

/// Scheduler configuration knob set.
struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kTraditional;
  std::uint32_t iq_entries = 64;
  /// Per-thread rename (dispatch) buffer capacity; also the upper bound on
  /// the out-of-order dispatch scan depth.
  std::uint32_t rename_buffer_entries = 32;
  /// How many buffer entries the OOO dispatch scan may examine per thread
  /// per cycle, counting both bypassed NDIs and dispatched instructions
  /// (0 = whole buffer).  Models the scan/dispatch port budget of a
  /// hardware implementation.
  std::uint32_t scan_depth = 0;
  DeadlockMode deadlock = DeadlockMode::kAvoidanceBuffer;
  /// Watchdog countdown start (Section 4 suggests 2-3x the memory latency;
  /// default 3 * 150).
  std::uint32_t watchdog_timeout = 450;
  /// When true (the paper's chosen variant), instructions in the
  /// deadlock-avoidance buffer take absolute precedence: IQ selection is
  /// disabled on cycles when the DAB is occupied.
  bool dab_exclusive = true;

  [[nodiscard]] std::uint32_t effective_scan_depth() const noexcept {
    return scan_depth == 0 ? rename_buffer_entries : scan_depth;
  }
};

/// A renamed instruction as the scheduler sees it.
struct SchedInst {
  ThreadId tid = 0;
  SeqNum seq = 0;             ///< program order within the thread
  isa::OpClass op = isa::OpClass::kIntAlu;
  PhysReg src[isa::kMaxSources] = {kNoPhysReg, kNoPhysReg};
  PhysReg dest = kNoPhysReg;
};

/// Why a thread could not dispatch its next in-order instruction this cycle.
enum class DispatchBlock : std::uint8_t {
  kNone,         ///< dispatched, or buffer empty
  kEmptyBuffer,  ///< nothing renamed and waiting
  kIqFull,       ///< no free issue-queue entry of any kind
  kTwoNonReady,  ///< NDI: needs 2 comparators, entries only have 1
  kWidth,        ///< machine dispatch width exhausted this cycle
};

[[nodiscard]] std::string_view dispatch_block_name(DispatchBlock block) noexcept;

}  // namespace msim::core
