// Pipe protocol between sweep worker processes and their supervisor.
//
// A worker talks to the supervisor over a unidirectional pipe using framed
// binary messages: [u32 length][u8 type][payload].  The length covers the
// type byte plus the payload, so a reader can skip unknown types.  Frames
// are written with a single write() when they fit PIPE_BUF and a retry loop
// otherwise; the supervisor reassembles them from whatever chunk sizes
// poll()+read() deliver (FrameReader).  Everything here is transport: the
// supervisor decides what the messages *mean* (supervisor.hpp).
//
// The chaos plan also lives here: a deterministic fault-injection schedule
// for worker processes ("SIGKILL yourself before grid cell 7"), used by the
// chaos tests and the chaos-sweep-smoke CI job to prove the supervision
// machinery actually supervises.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace msim::robust {

/// Worker-to-supervisor message types.
enum class WorkerMsg : std::uint8_t {
  kHello = 1,      ///< worker is alive: {u32 slot, u32 incarnation}
  kCellStart = 2,  ///< about to run a cell: {u64 cell}
  kHeartbeat = 3,  ///< liveness tick: {u64 cell} (in-flight cell or ~0)
  kCellDone = 4,   ///< cell finished: {u64 cell, u8 ok, u32 attempts,
                   ///<   string error, bytes payload}
  kShardDone = 5,  ///< every assigned cell is done; worker exits 0 next
};

/// One decoded frame.
struct Frame {
  WorkerMsg type = WorkerMsg::kHello;
  std::vector<std::uint8_t> payload;
};

/// Appends `frame` to `out` in wire format.
void encode_frame(WorkerMsg type, const std::vector<std::uint8_t>& payload,
                  std::vector<std::uint8_t>& out);

/// Little-endian field helpers for frame payloads.
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_bytes(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& bytes);
void put_string(std::vector<std::uint8_t>& out, const std::string& s);

/// Sequential payload reader; throws std::runtime_error on truncation.
class FieldReader {
 public:
  explicit FieldReader(const std::vector<std::uint8_t>& payload)
      : payload_(payload) {}
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::vector<std::uint8_t> bytes();
  [[nodiscard]] std::string string();

 private:
  const std::vector<std::uint8_t>& payload_;
  std::size_t pos_ = 0;
};

/// Incremental frame reassembly for one pipe: feed() whatever read()
/// returned, next() yields complete frames until the buffer runs dry.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  [[nodiscard]] std::optional<Frame> next();

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;
};

/// Writes one frame to `fd`, retrying on EINTR and short writes.  Returns
/// false when the supervisor end is gone (EPIPE): the worker is orphaned
/// and should exit rather than compute into the void.
[[nodiscard]] bool write_frame(int fd, WorkerMsg type,
                               const std::vector<std::uint8_t>& payload);

// ---- chaos plan ------------------------------------------------------------

/// One injected worker fault: before running grid cell `cell`, the worker
/// performs `action`.  Non-persistent faults fire only in a worker slot's
/// first incarnation, so the respawned worker retries the cell cleanly and
/// the sweep's surviving cells stay byte-identical to a fault-free run;
/// persistent faults fire every attempt and drive the cell into
/// `failed_cells` once its retries are exhausted.
struct WorkerFault {
  enum class Action : std::uint8_t {
    kKill,  ///< raise(SIGKILL): instant death, nothing flushed
    kSegv,  ///< raise(SIGSEGV): a real crash signal (asan turns it into a
            ///< nonzero exit; either way the supervisor sees a death)
    kHang,  ///< stop heartbeating and sleep: the missed-heartbeat detector
            ///< must SIGKILL the worker
  };
  Action action = Action::kKill;
  std::uint64_t cell = 0;
  bool persistent = false;
};

/// Parsed `chaos=` specification: comma-separated `ACTION@CELL` items with
/// an optional trailing `!` for persistent faults, e.g.
/// `kill@5,segv@13,hang@21,kill@2!`.  CELL is the fixed grid index
/// (kind-major x iq x mix), so a plan addresses the same cell at any
/// `workers=` count.
struct ChaosPlan {
  std::vector<WorkerFault> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }

  /// The fault registered for `cell`, or nullptr.
  [[nodiscard]] const WorkerFault* fault_for(std::uint64_t cell) const noexcept;

  /// Throws std::invalid_argument on malformed specs or duplicate cells.
  static ChaosPlan parse(const std::string& spec);
};

/// Executes `fault` in the worker process (does not return for kKill/kSegv;
/// kHang parks the calling thread forever).  `stop_heartbeat` is invoked
/// first so a hanging worker goes dark instead of beating on.
[[noreturn]] void perform_worker_fault(const WorkerFault& fault,
                                       const std::function<void()>& stop_heartbeat);

}  // namespace msim::robust
