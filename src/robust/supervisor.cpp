#include "robust/supervisor.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/json.hpp"
#include "obs/progress.hpp"
#include "persist/journal.hpp"
#include "persist/signal.hpp"

namespace msim::robust {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kNoCell = ~std::uint64_t{0};

/// Clamped at zero: `then` may postdate `now` (a message stamped mid-loop
/// against a now captured at the top), and a negative duration cast to
/// unsigned would read as an enormous silence.
std::uint64_t ms_since(Clock::time_point then, Clock::time_point now) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - then).count();
  return ms > 0 ? static_cast<std::uint64_t>(ms) : 0;
}

/// Describes how a reaped worker ended, for diagnostics.
std::string describe_wait_status(int status) {
  if (WIFEXITED(status)) {
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  return "ended with wait status " + std::to_string(status);
}

// ---- worker side -----------------------------------------------------------

/// Everything the forked child needs; plain values so fork() hands each
/// incarnation a private copy.
struct WorkerArgs {
  unsigned slot = 0;
  unsigned incarnation = 0;
  int pipe_fd = -1;
  std::vector<std::size_t> cells;  // remaining shard, grid order
};

/// The worker process body.  Never returns: _exit() always, so a worker
/// forked from a test binary cannot fall back into the test framework.
[[noreturn]] void worker_main(const SupervisorConfig& config,
                              const WorkerArgs& args, const CellFn& cell_fn) {
  persist::reset_signals_in_forked_child();

  // Private shard journal: replaying it first means work journaled just
  // before a death is reported, not repeated.
  std::unique_ptr<persist::SweepJournal> shard;
  if (!config.journal_path.empty()) {
    try {
      shard = std::make_unique<persist::SweepJournal>(
          SweepSupervisor::shard_path(config.journal_path, args.slot),
          config.journal_fingerprint, /*resume=*/true);
    } catch (const std::exception&) {
      _exit(10);  // unusable shard journal: the supervisor sees a death
    }
  }

  std::mutex pipe_mu;  // frames must not interleave with heartbeats
  std::atomic<std::uint64_t> current_cell{kNoCell};
  std::atomic<bool> stop_heartbeat{false};

  auto send = [&](WorkerMsg type, const std::vector<std::uint8_t>& payload) {
    const std::lock_guard<std::mutex> lock(pipe_mu);
    if (!write_frame(args.pipe_fd, type, payload)) {
      _exit(11);  // supervisor is gone: stop computing into the void
    }
  };

  {
    std::vector<std::uint8_t> hello;
    put_u32(hello, args.slot);
    put_u32(hello, args.incarnation);
    send(WorkerMsg::kHello, hello);
  }

  std::thread heartbeat([&] {
    while (!stop_heartbeat.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.tuning.heartbeat_interval_ms));
      if (stop_heartbeat.load(std::memory_order_relaxed)) break;
      std::vector<std::uint8_t> beat;
      put_u64(beat, current_cell.load(std::memory_order_relaxed));
      send(WorkerMsg::kHeartbeat, beat);
    }
  });
  auto quiesce = [&] {
    stop_heartbeat.store(true, std::memory_order_relaxed);
  };

  for (const std::size_t cell : args.cells) {
    const std::string key = config.cell_label ? config.cell_label(cell)
                                              : std::to_string(cell);
    if (shard != nullptr) {
      if (const std::vector<std::uint8_t>* replay = shard->find(key)) {
        std::vector<std::uint8_t> done;
        put_u64(done, cell);
        done.push_back(1);          // ok
        put_u32(done, 0);           // attempts live inside the payload
        put_string(done, "");
        put_bytes(done, *replay);
        send(WorkerMsg::kCellDone, done);
        continue;
      }
    }

    {
      std::vector<std::uint8_t> start;
      put_u64(start, cell);
      send(WorkerMsg::kCellStart, start);
    }
    current_cell.store(cell, std::memory_order_relaxed);

    if (const WorkerFault* fault = config.chaos.fault_for(cell)) {
      if (fault->persistent || args.incarnation == 0) {
        perform_worker_fault(*fault, quiesce);
      }
    }

    CellOutcome outcome;
    try {
      outcome = cell_fn(cell);
    } catch (const std::exception& e) {
      outcome.ok = false;
      outcome.error = e.what();
    } catch (...) {
      outcome.ok = false;
      outcome.error = "unknown exception in sweep cell";
    }

    if (outcome.ok && shard != nullptr) {
      try {
        shard->append(key, outcome.payload);
      } catch (const std::exception& e) {
        outcome.ok = false;
        outcome.error = std::string("shard journal append failed: ") + e.what();
      }
    }

    std::vector<std::uint8_t> done;
    put_u64(done, cell);
    done.push_back(outcome.ok ? 1 : 0);
    put_u32(done, outcome.attempts);
    put_string(done, outcome.error);
    put_bytes(done, outcome.payload);
    send(WorkerMsg::kCellDone, done);
    current_cell.store(kNoCell, std::memory_order_relaxed);
  }

  send(WorkerMsg::kShardDone, {});
  quiesce();
  heartbeat.join();
  _exit(0);
}

// ---- supervisor side -------------------------------------------------------

struct WorkerSlot {
  pid_t pid = -1;
  int fd = -1;  // nonblocking read end of the worker's pipe
  FrameReader reader;
  unsigned incarnations = 0;  // forks so far (next incarnation index)
  unsigned deaths = 0;        // unexpected ends so far (backoff input)
  bool shard_done = false;    // saw kShardDone from the live incarnation
  bool finished = false;      // no work left, no process running
  bool respawn_pending = false;
  Clock::time_point respawn_at{};
  std::uint64_t in_flight = kNoCell;
  Clock::time_point cell_started{};
  Clock::time_point last_msg{};
  std::string kill_reason;  // set when the supervisor SIGKILLs on purpose
};

}  // namespace

std::string SweepSupervisor::shard_path(const std::string& journal_path,
                                        unsigned slot) {
  return journal_path + ".shard" + std::to_string(slot);
}

SweepSupervisor::SweepSupervisor(SupervisorConfig config)
    : config_(std::move(config)) {
  MSIM_CHECK(config_.workers >= 1);
}

SupervisorReport SweepSupervisor::run(const CellFn& cell_fn) {
  SupervisorReport report;
  const unsigned workers = config_.workers;

  std::set<std::size_t> done(config_.completed.begin(), config_.completed.end());
  std::set<std::size_t> exhausted;
  std::map<std::size_t, unsigned> cell_deaths;
  std::size_t done_count = done.size();

  auto publish = [&](obs::ProgressEvent event) {
    if (config_.progress_bus != nullptr) config_.progress_bus->publish(event);
  };
  auto label_of = [&](std::size_t cell) {
    return config_.cell_label ? config_.cell_label(cell) : std::to_string(cell);
  };

  // Remaining shard of `slot`, in grid order: owned, not done, not exhausted.
  auto remaining = [&](unsigned slot) {
    std::vector<std::size_t> cells;
    for (std::size_t i = slot; i < config_.total_cells; i += workers) {
      if (done.count(i) == 0 && exhausted.count(i) == 0) cells.push_back(i);
    }
    return cells;
  };

  std::vector<WorkerSlot> slots(workers);

  auto spawn = [&](unsigned slot_index) {
    WorkerSlot& slot = slots[slot_index];
    const std::vector<std::size_t> cells = remaining(slot_index);
    if (cells.empty()) {
      slot.finished = true;
      slot.respawn_pending = false;
      return;
    }
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error(std::string("sweep supervisor: pipe: ") +
                               std::strerror(errno));
    }
    WorkerArgs args;
    args.slot = slot_index;
    args.incarnation = slot.incarnations;
    args.pipe_fd = fds[1];
    args.cells = cells;
    const pid_t pid = ::fork();
    if (pid < 0) {
      (void)::close(fds[0]);
      (void)::close(fds[1]);
      throw std::runtime_error(std::string("sweep supervisor: fork: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      (void)::close(fds[0]);
      for (const WorkerSlot& other : slots) {
        if (other.fd >= 0) (void)::close(other.fd);
      }
      worker_main(config_, args, cell_fn);  // never returns
    }
    (void)::close(fds[1]);
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    (void)::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    (void)::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    slot.pid = pid;
    slot.fd = fds[0];
    slot.reader = FrameReader{};
    slot.shard_done = false;
    slot.respawn_pending = false;
    slot.in_flight = kNoCell;
    slot.kill_reason.clear();
    slot.last_msg = Clock::now();
    ++slot.incarnations;
    ++report.workers_spawned;
    obs::ProgressEvent event(obs::ProgressKind::kWorkerSpawn);
    event.label = "worker" + std::to_string(slot_index);
    event.detail = "incarnation " + std::to_string(args.incarnation);
    publish(event);
  };

  auto kill_all_and_reap = [&] {
    for (WorkerSlot& slot : slots) {
      if (slot.pid > 0) (void)::kill(slot.pid, SIGKILL);
    }
    for (WorkerSlot& slot : slots) {
      if (slot.pid > 0) {
        int status = 0;
        (void)::waitpid(slot.pid, &status, 0);
        slot.pid = -1;
      }
      if (slot.fd >= 0) {
        (void)::close(slot.fd);
        slot.fd = -1;
      }
    }
  };

  auto handle_frame = [&](unsigned slot_index, const Frame& frame) {
    WorkerSlot& slot = slots[slot_index];
    slot.last_msg = Clock::now();
    FieldReader fields(frame.payload);
    switch (frame.type) {
      case WorkerMsg::kHello:
        (void)fields.u32();
        (void)fields.u32();
        break;
      case WorkerMsg::kHeartbeat:
        (void)fields.u64();
        break;
      case WorkerMsg::kCellStart: {
        const std::uint64_t cell = fields.u64();
        slot.in_flight = cell;
        slot.cell_started = Clock::now();
        obs::ProgressEvent event(obs::ProgressKind::kCellStart);
        event.label = label_of(cell);
        event.total = config_.total_cells;
        event.done = done_count;
        publish(event);
        break;
      }
      case WorkerMsg::kCellDone: {
        const std::uint64_t cell = fields.u64();
        CellOutcome outcome;
        outcome.ok = fields.u8() != 0;
        outcome.attempts = fields.u32();
        outcome.error = fields.string();
        outcome.payload = fields.bytes();
        if (slot.in_flight == cell) slot.in_flight = kNoCell;
        if (done.insert(cell).second) {
          ++done_count;
          report.outcomes[cell] = std::move(outcome);
          obs::ProgressEvent event(obs::ProgressKind::kCellFinish);
          event.label = label_of(cell);
          event.total = config_.total_cells;
          event.done = done_count;
          event.ok = report.outcomes[cell].ok;
          if (!event.ok) event.detail = report.outcomes[cell].error;
          publish(event);
        }
        break;
      }
      case WorkerMsg::kShardDone:
        slot.shard_done = true;
        break;
    }
  };

  // Drains whatever the pipe holds right now; returns false once the write
  // end is closed (EOF).
  auto drain_fd = [&](unsigned slot_index) {
    WorkerSlot& slot = slots[slot_index];
    if (slot.fd < 0) return false;
    std::uint8_t buf[4096];
    for (;;) {
      const ::ssize_t n = ::read(slot.fd, buf, sizeof buf);
      if (n > 0) {
        slot.reader.feed(buf, static_cast<std::size_t>(n));
        while (auto frame = slot.reader.next()) handle_frame(slot_index, *frame);
        continue;
      }
      if (n == 0) return false;  // EOF
      if (errno == EINTR) continue;
      return true;  // EAGAIN: drained for now
    }
  };

  auto on_death = [&](unsigned slot_index, const std::string& how) {
    WorkerSlot& slot = slots[slot_index];
    ++slot.deaths;
    ++report.worker_deaths;
    {
      obs::ProgressEvent event(obs::ProgressKind::kWorkerDeath);
      event.label = "worker" + std::to_string(slot_index);
      event.ok = false;
      event.detail = how;
      publish(event);
    }
    // Charge the death to the in-flight cell; a worker that died between
    // cells charges its next one, so repeated silent deaths still converge
    // on an exhausted cell instead of respawning forever.
    std::uint64_t victim = slot.in_flight;
    if (victim == kNoCell) {
      const std::vector<std::size_t> cells = remaining(slot_index);
      if (cells.empty()) {
        slot.finished = true;  // everything reported before the death landed
        return;
      }
      victim = cells.front();
    }
    slot.in_flight = kNoCell;
    const unsigned deaths_here = ++cell_deaths[static_cast<std::size_t>(victim)];
    if (deaths_here > config_.retries) {
      exhausted.insert(static_cast<std::size_t>(victim));
      ++done_count;
      SupervisorFailure failure;
      failure.cell = static_cast<std::size_t>(victim);
      failure.attempts = deaths_here;
      failure.error = "worker process " + how + " while running this cell (" +
                      std::to_string(deaths_here) + " attempts)";
      std::ostringstream diag;
      {
        JsonWriter w(diag, 0);
        w.begin_object();
        w.kv("cell", static_cast<std::uint64_t>(victim));
        w.kv("label", label_of(static_cast<std::size_t>(victim)));
        w.kv("slot", static_cast<std::uint64_t>(slot_index));
        w.kv("worker_deaths", static_cast<std::uint64_t>(deaths_here));
        w.kv("last_death", how);
        w.kv("retries", static_cast<std::uint64_t>(config_.retries));
        w.end_object();
      }
      failure.diag = diag.str();
      report.process_failures.push_back(std::move(failure));
      obs::ProgressEvent event(obs::ProgressKind::kCellFinish);
      event.label = label_of(static_cast<std::size_t>(victim));
      event.total = config_.total_cells;
      event.done = done_count;
      event.ok = false;
      event.detail = report.process_failures.back().error;
      publish(event);
    } else {
      obs::ProgressEvent event(obs::ProgressKind::kCellRetry);
      event.label = label_of(static_cast<std::size_t>(victim));
      event.ok = false;
      event.detail = how + "; retrying after backoff";
      publish(event);
    }
    const std::uint64_t delay =
        config_.tuning.backoff.delay_ms(slot_index, slot.deaths);
    slot.respawn_pending = true;
    slot.respawn_at = Clock::now() + std::chrono::milliseconds(delay);
  };

  try {
    for (unsigned i = 0; i < workers; ++i) spawn(i);

    for (;;) {
      bool all_finished = true;
      for (const WorkerSlot& slot : slots) {
        if (!slot.finished) {
          all_finished = false;
          break;
        }
      }
      if (all_finished) break;

      if (config_.watch_signals) {
        const int signum = persist::signal_pending();
        if (signum != 0) {
          kill_all_and_reap();
          throw persist::Interrupted(signum);
        }
      }
      if (config_.cancel &&
          config_.cancel->load(std::memory_order_relaxed)) {
        kill_all_and_reap();
        throw persist::Cancelled();
      }

      const Clock::time_point now = Clock::now();

      for (unsigned i = 0; i < workers; ++i) {
        WorkerSlot& slot = slots[i];
        if (slot.respawn_pending && now >= slot.respawn_at) spawn(i);
      }

      std::vector<struct pollfd> pfds;
      std::vector<unsigned> pfd_slots;
      for (unsigned i = 0; i < workers; ++i) {
        if (slots[i].fd >= 0) {
          pfds.push_back({slots[i].fd, POLLIN, 0});
          pfd_slots.push_back(i);
        }
      }
      if (pfds.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      } else {
        (void)::poll(pfds.data(), pfds.size(), 20);
        for (std::size_t p = 0; p < pfds.size(); ++p) {
          if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            (void)drain_fd(pfd_slots[p]);
          }
        }
      }

      for (unsigned i = 0; i < workers; ++i) {
        WorkerSlot& slot = slots[i];
        if (slot.pid <= 0) continue;
        int status = 0;
        const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
        if (reaped != slot.pid) continue;
        // Reap order matters: drain every frame the worker managed to
        // write before deciding whether its death lost a cell.
        while (drain_fd(i)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (slot.fd >= 0) {
          (void)::close(slot.fd);
          slot.fd = -1;
        }
        slot.pid = -1;
        const bool clean = slot.shard_done && WIFEXITED(status) &&
                           WEXITSTATUS(status) == 0;
        if (clean && remaining(i).empty()) {
          slot.finished = true;
          obs::ProgressEvent event(obs::ProgressKind::kWorkerExit);
          event.label = "worker" + std::to_string(i);
          publish(event);
        } else {
          std::string how = slot.kill_reason.empty()
                                ? describe_wait_status(status)
                                : slot.kill_reason;
          on_death(i, how);
        }
      }

      for (unsigned i = 0; i < workers; ++i) {
        WorkerSlot& slot = slots[i];
        if (slot.pid <= 0) continue;
        const std::uint64_t silent = ms_since(slot.last_msg, now);
        if (silent > config_.tuning.heartbeat_timeout_ms) {
          slot.kill_reason = "missed heartbeats for " + std::to_string(silent) +
                             "ms (SIGKILLed by supervisor)";
          (void)::kill(slot.pid, SIGKILL);
          continue;
        }
        if (config_.cell_timeout_ms != 0 && slot.in_flight != kNoCell) {
          const std::uint64_t running = ms_since(slot.cell_started, now);
          if (running > config_.cell_timeout_ms) {
            slot.kill_reason =
                "cell exceeded cell_timeout_ms=" +
                std::to_string(config_.cell_timeout_ms) + " (ran " +
                std::to_string(running) + "ms; SIGKILLed by supervisor)";
            (void)::kill(slot.pid, SIGKILL);
          }
        }
      }
    }
  } catch (...) {
    kill_all_and_reap();
    throw;
  }

  return report;
}

}  // namespace msim::robust
