#include "robust/invariant.hpp"

#include <string>

#include "common/check.hpp"

namespace msim::robust {

namespace {

[[noreturn]] void violation(Cycle now, const std::string& what) {
  throw CheckError("invariant violation at cycle " + std::to_string(now) + ": " +
                   what);
}

}  // namespace

void InvariantChecker::on_commit(ThreadId tid, SeqNum seq, Cycle now) {
  if (commit_watch_.size() <= tid) commit_watch_.resize(tid + std::size_t{1});
  CommitWatch& w = commit_watch_[tid];
  if (w.seen && seq != w.next) {
    violation(now, "thread " + std::to_string(tid) + " committed seq " +
                       std::to_string(seq) + " but program order requires " +
                       std::to_string(w.next));
  }
  w.seen = true;
  w.next = seq + 1;
  ++commits_checked_;
}

void InvariantChecker::on_cycle_end(const smt::Pipeline& pipe, Cycle now) {
  const core::Scheduler& sched = *pipe.scheduler_;
  const core::IssueQueue& iq = sched.iq();
  const smt::RenameUnit& rename = pipe.rename_;
  const smt::MachineConfig& config = pipe.config_;
  const unsigned threads = config.thread_count;

  std::uint32_t iq_sum = 0;
  unsigned inflight_int = 0;
  unsigned inflight_fp = 0;

  for (ThreadId t = 0; t < threads; ++t) {
    const auto& ts = *pipe.threads_[t];

    std::uint32_t unissued = 0;
    std::uint32_t mem_inflight = 0;
    ts.rob.for_each([&](const smt::RobEntry& e) {
      if (!e.issued) ++unissued;
      if (e.inst.is_mem()) ++mem_inflight;
      if (e.dest_phys != kNoPhysReg) {
        if (e.dest_phys < config.int_phys_regs) {
          ++inflight_int;
        } else {
          ++inflight_fp;
        }
      }
    });

    // 2. Dispatch-side accounting: every renamed, un-issued instruction is
    // in exactly one of {rename buffer, DAB, IQ}.
    const std::uint32_t dab = sched.dab_occupied(t) ? 1u : 0u;
    const std::uint32_t held = sched.buffer_size(t) + dab + iq.size_for(t);
    if (held != unissued) {
      violation(now, "thread " + std::to_string(t) + " scheduler holds " +
                         std::to_string(held) + " instructions (buffer " +
                         std::to_string(sched.buffer_size(t)) + " + dab " +
                         std::to_string(dab) + " + iq " +
                         std::to_string(iq.size_for(t)) + ") but the ROB has " +
                         std::to_string(unissued) + " un-issued entries");
    }
    iq_sum += iq.size_for(t);

    // 4. The DAB may only shelter the thread's oldest in-flight instruction
    // (that is the premise of the deadlock-avoidance argument in Section 4).
    if (const auto& slot = sched.dab_inst(t)) {
      if (ts.rob.empty() || slot->seq != ts.rob.head_seq()) {
        violation(now, "thread " + std::to_string(t) + " DAB holds seq " +
                           std::to_string(slot->seq) +
                           " which is not the thread's oldest in-flight "
                           "instruction (ROB head " +
                           (ts.rob.empty() ? std::string("<empty>")
                                           : std::to_string(ts.rob.head_seq())) +
                           ")");
      }
    }

    // 6. Every in-flight memory instruction occupies exactly one LSQ entry.
    if (ts.lsq.size() != mem_inflight) {
      violation(now, "thread " + std::to_string(t) + " LSQ holds " +
                         std::to_string(ts.lsq.size()) + " entries but the ROB has " +
                         std::to_string(mem_inflight) +
                         " in-flight memory instructions");
    }
  }

  // 3. Per-thread IQ occupancy must sum to the shared total.
  if (iq_sum != iq.size()) {
    violation(now, "per-thread IQ occupancies sum to " + std::to_string(iq_sum) +
                       " but the queue reports " + std::to_string(iq.size()));
  }

  // 5. Physical-register conservation per class: free list + one committed
  // mapping per (thread, arch reg) + in-flight destinations == total.
  const unsigned held_int =
      rename.free_int_regs() + threads * isa::kIntArchRegs + inflight_int;
  if (held_int != config.int_phys_regs) {
    violation(now, "int physical registers leak: free " +
                       std::to_string(rename.free_int_regs()) + " + committed " +
                       std::to_string(threads * isa::kIntArchRegs) +
                       " + in-flight " + std::to_string(inflight_int) + " = " +
                       std::to_string(held_int) + " of " +
                       std::to_string(config.int_phys_regs));
  }
  const unsigned held_fp =
      rename.free_fp_regs() + threads * isa::kFpArchRegs + inflight_fp;
  if (held_fp != config.fp_phys_regs) {
    violation(now, "fp physical registers leak: free " +
                       std::to_string(rename.free_fp_regs()) + " + committed " +
                       std::to_string(threads * isa::kFpArchRegs) +
                       " + in-flight " + std::to_string(inflight_fp) + " = " +
                       std::to_string(held_fp) + " of " +
                       std::to_string(config.fp_phys_regs));
  }

  ++cycles_checked_;
}

}  // namespace msim::robust
