// Deterministic exponential backoff for worker respawns.
//
// When the sweep supervisor loses a worker process (SIGKILL, SIGSEGV, a
// missed-heartbeat hang, a cell wall-clock timeout) it respawns the slot
// after a delay that grows exponentially with that slot's death count and
// carries a *deterministic* jitter: the jitter is a pure hash of
// (slot, death count), never a wall-clock or random draw, so a chaos test
// replays the exact same respawn schedule every run and two slots that die
// in the same cycle do not thundering-herd their respawns.
#pragma once

#include <algorithm>
#include <cstdint>

namespace msim::robust {

struct BackoffPolicy {
  /// Delay before the first respawn (death count 1).
  std::uint64_t base_ms = 50;
  /// Upper bound on any computed delay, jitter included.
  std::uint64_t max_ms = 5'000;
  /// Deterministic jitter amplitude as a fraction of the exponential delay,
  /// in percent (0 = pure exponential).
  std::uint32_t jitter_pct = 25;

  /// Delay in milliseconds before respawn number `deaths` (1-based) of
  /// worker slot `slot`.  Pure: same inputs, same answer, on any host.
  [[nodiscard]] std::uint64_t delay_ms(unsigned slot, unsigned deaths) const {
    if (deaths == 0) return 0;
    // base * 2^(deaths-1), saturating well below overflow.
    const unsigned shift = std::min(deaths - 1, 32u);
    std::uint64_t delay = base_ms;
    if (shift >= 64 || (delay << shift) >> shift != delay) {
      delay = max_ms;
    } else {
      delay <<= shift;
    }
    delay = std::min(delay, max_ms);
    if (jitter_pct != 0 && delay != 0) {
      // FNV-1a over (slot, deaths): stable across platforms.
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (const std::uint64_t v : {std::uint64_t{slot}, std::uint64_t{deaths}}) {
        for (int i = 0; i < 8; ++i) {
          h ^= (v >> (8 * i)) & 0xff;
          h *= 0x100000001b3ULL;
        }
      }
      const std::uint64_t amplitude = delay * jitter_pct / 100;
      if (amplitude != 0) delay += h % (amplitude + 1);
    }
    return std::min(delay, max_ms);
  }
};

}  // namespace msim::robust
