#include "robust/fault.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"

namespace msim::robust {

namespace {

/// Kind tags keep the per-fault decision streams independent even when
/// their coordinates collide.
enum FaultKind : std::uint64_t {
  kNdiStorm = 1,
  kIqExhaust = 2,
  kRobExhaust = 3,
  kLsqExhaust = 4,
  kLatency = 5,
  kDropDispatch = 6,
};

/// SplitMix64 finalizer: a stateless, well-mixed 64-bit permutation.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

[[nodiscard]] std::uint64_t hash_coords(std::uint64_t seed, std::uint64_t kind,
                                        std::uint64_t a, std::uint64_t b) noexcept {
  return mix(seed + mix(kind * 0x9e3779b97f4a7c15ULL + mix(a + mix(b))));
}

/// Uniform [0, 1) from the decision hash.
[[nodiscard]] double unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

class FaultSession final : public core::FaultHooks {
 public:
  explicit FaultSession(const FaultPlan& plan) : plan_(plan) {}

  [[nodiscard]] bool force_ndi(ThreadId tid, SeqNum seq, Cycle now) const override {
    (void)seq;  // storms are per (thread, time window), not per instruction
    if (plan_.ndi_storm_p <= 0.0) return false;
    return unit(hash_coords(plan_.seed, kNdiStorm, tid, now / plan_.window)) <
           plan_.ndi_storm_p;
  }

  [[nodiscard]] bool iq_exhausted(Cycle now) const override {
    if (plan_.iq_exhaust_p <= 0.0) return false;
    return unit(hash_coords(plan_.seed, kIqExhaust, now / plan_.window, 0)) <
           plan_.iq_exhaust_p;
  }

  [[nodiscard]] bool rob_exhausted(ThreadId tid, Cycle now) const override {
    if (plan_.rob_exhaust_p <= 0.0) return false;
    return unit(hash_coords(plan_.seed, kRobExhaust, tid, now / plan_.window)) <
           plan_.rob_exhaust_p;
  }

  [[nodiscard]] bool lsq_exhausted(ThreadId tid, Cycle now) const override {
    if (plan_.lsq_exhaust_p <= 0.0) return false;
    return unit(hash_coords(plan_.seed, kLsqExhaust, tid, now / plan_.window)) <
           plan_.lsq_exhaust_p;
  }

  [[nodiscard]] std::uint32_t extra_issue_latency(ThreadId tid, SeqNum seq,
                                                  Cycle now) const override {
    (void)now;  // per instruction, so a replayed seq perturbs identically
    if (plan_.latency_p <= 0.0 || plan_.latency_max == 0) return 0;
    const std::uint64_t h = hash_coords(plan_.seed, kLatency, tid, seq);
    if (unit(h) >= plan_.latency_p) return 0;
    return 1 + static_cast<std::uint32_t>(mix(h) % plan_.latency_max);
  }

  [[nodiscard]] bool commit_blocked(Cycle now) const override {
    return now >= plan_.commit_block_from;
  }

  [[nodiscard]] bool drop_dispatch(ThreadId tid, SeqNum seq,
                                   Cycle now) const override {
    (void)now;
    if (plan_.drop_dispatch_p <= 0.0) return false;
    return unit(hash_coords(plan_.seed, kDropDispatch, tid, seq)) <
           plan_.drop_dispatch_p;
  }

 private:
  FaultPlan plan_;
};

}  // namespace

std::string FaultPlan::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "seed=%llu window=%llu ndi=%.2f iq=%.2f rob=%.2f lsq=%.2f "
                "lat=%.2f/max%u%s%s",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(window), ndi_storm_p, iq_exhaust_p,
                rob_exhaust_p, lsq_exhaust_p, latency_p, latency_max,
                commit_block_from != kCycleNever ? " commit_block" : "",
                drop_dispatch_p > 0.0 ? " drop_dispatch" : "");
  return buf;
}

FaultPlan FaultPlan::random(std::uint64_t base_seed, std::uint64_t index,
                            double intensity) {
  intensity = std::clamp(intensity, 0.0, 1.0);
  Rng rng(derive_stream_seed(base_seed, "fault-plan", index));
  FaultPlan plan;
  plan.seed = rng.next_u64();
  plan.window = 16 + rng.next_below(113);  // 16..128 cycles
  plan.ndi_storm_p = intensity * rng.next_double();
  plan.iq_exhaust_p = intensity * rng.next_double();
  // Rename-side exhaustion compounds with the dispatch-side faults; keep
  // it moderate so plans stress the remedies rather than just idling the
  // whole front end.
  plan.rob_exhaust_p = 0.5 * intensity * rng.next_double();
  plan.lsq_exhaust_p = 0.5 * intensity * rng.next_double();
  plan.latency_p = intensity * rng.next_double();
  plan.latency_max = 1 + static_cast<std::uint32_t>(rng.next_below(64));
  return plan;
}

std::unique_ptr<core::FaultHooks> FaultInjector::session(
    std::uint64_t run_stream_seed) const {
  if (!plan_.applies_to(run_stream_seed)) return nullptr;
  return std::make_unique<FaultSession>(plan_);
}

}  // namespace msim::robust
