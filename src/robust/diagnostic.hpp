// Structured crash reporting for aborted simulations.
//
// When a run dies — the hang watchdog declares no forward progress, or an
// invariant check fails — the sim layer converts the failure into a
// SimulationAborted carrying a JSON diagnostic bundle: the abort reason,
// the machine configuration knobs that matter for deadlock analysis, a
// per-thread occupancy snapshot, the full metric registry, and the last-K
// tracer events when tracing was on.  The bundle is self-contained: it can
// be written to disk, attached to a CI artifact, and parsed back with
// msim::JsonValue.
#pragma once

#include <stdexcept>
#include <string>

#include "smt/pipeline.hpp"

namespace msim::robust {

/// A simulation died before reaching its horizon.  what() is the one-line
/// reason; bundle() is the JSON diagnostic document.
class SimulationAborted final : public std::runtime_error {
 public:
  SimulationAborted(const std::string& what, std::string bundle)
      : std::runtime_error(what), bundle_(std::move(bundle)) {}

  [[nodiscard]] const std::string& bundle() const noexcept { return bundle_; }

 private:
  std::string bundle_;
};

/// Builds the diagnostic bundle for `pipe` in its current (stuck) state.
/// `reason` is the abort explanation; `max_trace_events` caps the tracer
/// tail included in the bundle.
[[nodiscard]] std::string diagnostic_bundle(const smt::Pipeline& pipe,
                                            const std::string& reason,
                                            std::size_t max_trace_events = 256);

}  // namespace msim::robust
