// Cycle-level structural invariant checking (opt-in: --verify / verify=1).
//
// Installed as a smt::PipelineObserver, the checker audits the machine
// after every cycle and on every commit.  A violation throws
// msim::CheckError with the cycle, thread and the disagreeing values, so a
// corrupted run dies loudly at the first bad cycle instead of producing
// silently wrong statistics thousands of cycles later.
//
// Invariants (see docs/ROBUSTNESS.md):
//   1. program-order commit: each thread commits seq N, N+1, N+2, ...
//   2. scheduler accounting: per thread, the un-issued ROB population
//      equals rename buffer + DAB + IQ occupancy (no dispatch-side leak)
//   3. IQ per-thread occupancy sums to total IQ occupancy
//   4. DAB holds only the thread's oldest in-flight instruction
//   5. rename free-list conservation: free + committed maps + in-flight
//      destinations account for every physical register of each class
//   6. LSQ occupancy equals the in-flight memory-instruction population
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "smt/pipeline.hpp"

namespace msim::robust {

class InvariantChecker final : public smt::PipelineObserver {
 public:
  InvariantChecker() = default;

  void on_commit(ThreadId tid, SeqNum seq, Cycle now) override;
  void on_cycle_end(const smt::Pipeline& pipe, Cycle now) override;

  [[nodiscard]] std::uint64_t cycles_checked() const noexcept {
    return cycles_checked_;
  }
  [[nodiscard]] std::uint64_t commits_checked() const noexcept {
    return commits_checked_;
  }

 private:
  struct CommitWatch {
    SeqNum next = 0;
    bool seen = false;  ///< first observed commit fixes the starting seq
  };

  std::vector<CommitWatch> commit_watch_;  ///< per thread, grown on demand
  std::uint64_t cycles_checked_ = 0;
  std::uint64_t commits_checked_ = 0;
};

}  // namespace msim::robust
