#include "robust/worker_protocol.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <unistd.h>

namespace msim::robust {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_bytes(std::vector<std::uint8_t>& out,
               const std::vector<std::uint8_t>& bytes) {
  put_u64(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::uint32_t FieldReader::u32() {
  if (pos_ + 4 > payload_.size()) {
    throw std::runtime_error("worker protocol: truncated u32 field");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(payload_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t FieldReader::u64() {
  if (pos_ + 8 > payload_.size()) {
    throw std::runtime_error("worker protocol: truncated u64 field");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(payload_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::uint8_t FieldReader::u8() {
  if (pos_ >= payload_.size()) {
    throw std::runtime_error("worker protocol: truncated u8 field");
  }
  return payload_[pos_++];
}

std::vector<std::uint8_t> FieldReader::bytes() {
  const std::uint64_t n = u64();
  if (pos_ + n > payload_.size()) {
    throw std::runtime_error("worker protocol: truncated bytes field");
  }
  std::vector<std::uint8_t> out(payload_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                payload_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string FieldReader::string() {
  const std::uint64_t n = u64();
  if (pos_ + n > payload_.size()) {
    throw std::runtime_error("worker protocol: truncated string field");
  }
  std::string out(payload_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  payload_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void encode_frame(WorkerMsg type, const std::vector<std::uint8_t>& payload,
                  std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(payload.size() + 1));
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameReader::feed(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameReader::next() {
  // Compact lazily: drop consumed bytes once they dominate the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf_[consumed_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len == 0) throw std::runtime_error("worker protocol: zero-length frame");
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  Frame frame;
  frame.type = static_cast<WorkerMsg>(buf_[consumed_ + 4]);
  frame.payload.assign(
      buf_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 5),
      buf_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4 + len));
  consumed_ += 4 + static_cast<std::size_t>(len);
  return frame;
}

bool write_frame(int fd, WorkerMsg type,
                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> wire;
  wire.reserve(payload.size() + 5);
  encode_frame(type, payload, wire);
  std::size_t written = 0;
  while (written < wire.size()) {
    const ::ssize_t n = ::write(fd, wire.data() + written, wire.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE and friends: the supervisor is gone
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

const WorkerFault* ChaosPlan::fault_for(std::uint64_t cell) const noexcept {
  for (const WorkerFault& f : faults) {
    if (f.cell == cell) return &f;
  }
  return nullptr;
}

ChaosPlan ChaosPlan::parse(const std::string& spec) {
  ChaosPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string item = spec.substr(start, end - start);
    if (!item.empty()) {
      WorkerFault fault;
      if (!item.empty() && item.back() == '!') {
        fault.persistent = true;
        item.pop_back();
      }
      const std::size_t at = item.find('@');
      if (at == std::string::npos) {
        throw std::invalid_argument(
            "chaos: item '" + item +
            "' is not ACTION@CELL (e.g. kill@5, segv@13, hang@21, kill@2!)");
      }
      const std::string action = item.substr(0, at);
      if (action == "kill") {
        fault.action = WorkerFault::Action::kKill;
      } else if (action == "segv") {
        fault.action = WorkerFault::Action::kSegv;
      } else if (action == "hang") {
        fault.action = WorkerFault::Action::kHang;
      } else {
        throw std::invalid_argument("chaos: unknown action '" + action +
                                    "' (kill | segv | hang)");
      }
      const std::string cell = item.substr(at + 1);
      if (cell.empty() ||
          cell.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("chaos: '" + cell +
                                    "' is not a grid cell index");
      }
      fault.cell = std::stoull(cell);
      if (plan.fault_for(fault.cell) != nullptr) {
        throw std::invalid_argument("chaos: duplicate fault for cell " + cell);
      }
      plan.faults.push_back(fault);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return plan;
}

void perform_worker_fault(const WorkerFault& fault,
                          const std::function<void()>& stop_heartbeat) {
  switch (fault.action) {
    case WorkerFault::Action::kKill:
      (void)::raise(SIGKILL);
      break;
    case WorkerFault::Action::kSegv:
      (void)::raise(SIGSEGV);
      break;
    case WorkerFault::Action::kHang:
      break;
  }
  // kHang (or a raise that somehow returned): go dark.  The supervisor's
  // missed-heartbeat detector must SIGKILL this process.
  if (stop_heartbeat) stop_heartbeat();
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}

}  // namespace msim::robust
