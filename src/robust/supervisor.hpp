// Process-level sweep execution: fork workers, supervise them, survive them.
//
// SweepSupervisor runs a sweep grid across forked worker processes so that a
// crashing or hanging cell (simulator bug, OOM kill, injected chaos fault)
// takes down one worker instead of the whole sweep.  Each worker owns a
// deterministic shard of the grid (cell i -> slot i % workers, in grid
// order) and reports over a pipe (worker_protocol.hpp); the supervisor
// watches heartbeats and per-cell wall-clock budgets, SIGKILLs workers that
// hang, reaps workers that die, and respawns them after a deterministic
// exponential backoff (backoff.hpp).  A cell whose worker dies too many
// times is marked exhausted and surfaces as a SupervisorFailure with a
// diagnostic bundle; every other cell's result is byte-identical to a
// fault-free run at any worker count, because cells never share mutable
// state and the shard assignment depends only on the grid.
//
// Durability: when a journal path is configured, each worker appends
// finished cells to its own shard journal `<path>.shard<slot>` (PR 5
// format, persist/journal.hpp).  A respawned worker replays its shard
// before running anything, so work journaled just before a death is never
// repeated even if the CellDone message was lost with the pipe.  The
// caller (sim::run_sweep) merges shards into the main journal in fixed
// grid order once the sweep finishes.
//
// The supervisor is policy-free about what a cell *is*: the caller supplies
// a CellFn that runs one cell inside the worker process and returns an
// opaque payload (an encoded MixResult, in practice).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "robust/backoff.hpp"
#include "robust/worker_protocol.hpp"

namespace msim::obs {
class ProgressBus;
}

namespace msim::robust {

/// What one cell produced inside a worker.  `payload` is opaque to the
/// supervisor and only meaningful when `ok`; `attempts`/`error` describe
/// in-worker (isolated-cell) retries, which are invisible to the
/// supervisor's own death accounting.
struct CellOutcome {
  bool ok = true;
  std::string error;
  std::uint32_t attempts = 1;
  std::vector<std::uint8_t> payload;
};

/// Runs one grid cell.  Invoked inside the worker process only; must not
/// throw (wrap failures into an ok=false outcome).
using CellFn = std::function<CellOutcome(std::size_t cell)>;

/// Liveness and respawn policy.  Defaults suit tests; real sweeps mostly
/// stretch heartbeat_timeout_ms.
struct SupervisorTuning {
  std::uint64_t heartbeat_interval_ms = 25;  ///< worker beat period
  std::uint64_t heartbeat_timeout_ms = 2000; ///< silence before SIGKILL
  BackoffPolicy backoff;                     ///< respawn delay policy
};

struct SupervisorConfig {
  std::size_t total_cells = 0;
  unsigned workers = 1;
  /// Supervisor-level retries per cell: a cell may see `retries` worker
  /// deaths and still succeed on the next incarnation; one more death
  /// exhausts it.
  unsigned retries = 0;
  /// Wall-clock budget per cell (0 = unlimited).  A worker exceeding it on
  /// one cell is SIGKILLed and the death is charged to that cell.
  std::uint64_t cell_timeout_ms = 0;
  SupervisorTuning tuning;
  /// Deterministic fault-injection schedule executed by the workers.
  ChaosPlan chaos;
  /// Main journal path; shards live at `<path>.shard<slot>`.  Empty
  /// disables worker-side journaling (respawns then rely on the
  /// supervisor's in-memory done set alone).
  std::string journal_path;
  std::uint64_t journal_fingerprint = 0;
  /// Cells already completed before this run (journal resume): never
  /// assigned to a worker.
  std::vector<std::size_t> completed;
  /// Poll persist::signal_pending() and convert SIGINT/SIGTERM into
  /// kill-all-workers + persist::Interrupted.
  bool watch_signals = false;
  /// Cooperative per-sweep cancellation (sim::RunConfig::cancel, the serve
  /// daemon): when the flag goes true the supervisor SIGKILLs and reaps
  /// every worker, then throws persist::Cancelled.  Journaled shard cells
  /// survive on disk, so a resumed sweep replays them.  Not owned, may be
  /// nullptr.
  const std::atomic<bool>* cancel = nullptr;
  obs::ProgressBus* progress_bus = nullptr;  ///< optional, not owned
  /// Human-readable cell key; doubles as the shard-journal entry key, so it
  /// must match the key the caller uses for journal replay.
  std::function<std::string(std::size_t)> cell_label;
};

/// A cell that exhausted its supervisor-level retries.
struct SupervisorFailure {
  std::size_t cell = 0;
  std::string error;       ///< one-line cause ("worker killed by signal 9 ...")
  std::uint32_t attempts = 0;  ///< worker deaths charged to this cell
  std::string diag;        ///< JSON diagnostic bundle (slot, deaths, reason)
};

struct SupervisorReport {
  /// Outcomes for every cell that ran (or replayed from a shard journal)
  /// under this supervisor, keyed by grid index.  Excludes
  /// `config.completed` cells and exhausted cells.
  std::map<std::size_t, CellOutcome> outcomes;
  std::vector<SupervisorFailure> process_failures;
  unsigned workers_spawned = 0;  ///< forks, including respawns
  unsigned worker_deaths = 0;    ///< unexpected exits (signals, crashes)
};

class SweepSupervisor {
 public:
  explicit SweepSupervisor(SupervisorConfig config);

  /// Runs the sweep to completion: every cell not in `config.completed`
  /// ends up either in `outcomes` or in `process_failures`.  Throws
  /// persist::Interrupted (after killing and reaping all workers) when
  /// watch_signals is set and a signal arrives.
  SupervisorReport run(const CellFn& cell_fn);

  /// `<journal_path>.shard<slot>`: one worker's private journal.
  [[nodiscard]] static std::string shard_path(const std::string& journal_path,
                                              unsigned slot);

 private:
  SupervisorConfig config_;
};

}  // namespace msim::robust
