#include "robust/diagnostic.hpp"

#include <sstream>
#include <vector>

#include "common/json.hpp"
#include "core/sched_types.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace msim::robust {

std::string diagnostic_bundle(const smt::Pipeline& pipe, const std::string& reason,
                              std::size_t max_trace_events) {
  const smt::MachineConfig& config = pipe.config();
  const core::Scheduler& sched = pipe.scheduler();

  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.kv("report", "msim-diagnostic-bundle");
  w.kv("reason", reason);
  w.kv("cycle", pipe.cycles());

  w.key("config");
  w.begin_object();
  w.kv("thread_count", config.thread_count);
  w.kv("scheduler_kind", core::scheduler_kind_name(config.scheduler.kind));
  w.kv("deadlock_mode", core::deadlock_mode_name(config.scheduler.deadlock));
  w.kv("iq_entries", config.scheduler.iq_entries);
  w.kv("rename_buffer_entries", config.scheduler.rename_buffer_entries);
  w.kv("watchdog_timeout", config.scheduler.watchdog_timeout);
  w.kv("hang_cycles", config.hang_cycles);
  w.kv("rob_entries_per_thread", config.rob_entries_per_thread);
  w.kv("lsq_entries_per_thread", config.lsq_entries_per_thread);
  w.kv("fault_injection", config.fault_hooks != nullptr);
  w.end_object();

  // The stuck machine's shape: where is everything piled up?
  w.key("occupancy");
  w.begin_object();
  w.kv("iq", sched.iq().size());
  w.kv("iq_capacity", sched.iq().capacity());
  w.kv("dab", sched.dab_occupancy());
  w.key("threads");
  w.begin_array();
  for (ThreadId t = 0; t < config.thread_count; ++t) {
    w.begin_object();
    w.kv("tid", std::uint32_t{t});
    w.kv("committed", pipe.committed(t));
    w.kv("rob", pipe.rob_size(t));
    w.kv("lsq", pipe.lsq_size(t));
    w.kv("fetch_queue", pipe.fetch_queue_size(t));
    w.kv("rename_buffer", sched.buffer_size(t));
    w.kv("iq", sched.iq().size_for(t));
    w.kv("dab_occupied", sched.dab_occupied(t));
    w.kv("replay_depth", pipe.replay_depth(t));
    w.kv("block_reason", core::dispatch_block_name(sched.block_reason(t)));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  // Full metric registry (counters, stall attribution, fault counters...).
  const std::vector<obs::MetricSnapshot> metrics = pipe.registry().snapshot();
  w.key("stats");
  w.begin_object();
  obs::write_metrics_fields(w, metrics);
  w.end_object();

  // The last events before the hang, when tracing was on.
  w.key("trace_tail");
  w.begin_array();
  if (pipe.tracer().enabled()) {
    const std::vector<obs::TraceEvent> events = pipe.tracer().events();
    const std::size_t start =
        events.size() > max_trace_events ? events.size() - max_trace_events : 0;
    for (std::size_t i = start; i < events.size(); ++i) {
      const obs::TraceEvent& e = events[i];
      w.begin_object();
      w.kv("cycle", e.cycle);
      w.kv("tid", std::uint32_t{e.tid});
      w.kv("seq", e.seq);
      w.kv("stage", obs::trace_stage_name(e.stage));
      w.kv("flags", std::uint32_t{e.flags});
      w.end_object();
    }
  }
  w.end_array();

  w.end_object();
  return os.str();
}

}  // namespace msim::robust
