// Deterministic fault injection for forward-progress hardening.
//
// A FaultPlan describes adversarial conditions at the hazard-origin points
// of the machine (Section 4 of the paper motivates why these are the
// dangerous ones for out-of-order dispatch): forced NDI storms per thread,
// transient IQ/ROB/LSQ entry exhaustion, randomized execution-latency
// perturbation, and two *sabotage* faults (commit blockade, dropped
// dispatch) that manufacture guaranteed failures for self-testing the hang
// watchdog and the invariant checker.
//
// Every decision is a pure hash of (plan seed, fault kind, coordinates), so
// a session is stateless, thread-safe, and answers identically no matter
// how often or in which order the pipeline asks — including the same seq
// being replayed after a watchdog flush.  Fault-injected runs are therefore
// exactly as reproducible as fault-free ones.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hpp"
#include "core/fault_hooks.hpp"

namespace msim::robust {

/// Probabilities are per decision window (time-based faults) or per
/// instruction (latency perturbation); 0 disables the fault entirely.
struct FaultPlan {
  std::uint64_t seed = 0;          ///< hash stream for all decisions
  /// When non-zero, the plan only applies to the run whose RNG stream seed
  /// equals this value — used to sabotage exactly one sweep cell while
  /// every other cell (and all baselines) runs fault-free.
  std::uint64_t target_stream = 0;
  /// Decision-window length in cycles for the time-based faults.
  Cycle window = 64;
  double ndi_storm_p = 0.0;     ///< P(thread's dispatch classifies all as NDI) per window
  double iq_exhaust_p = 0.0;    ///< P(IQ pretends full) per window
  double rob_exhaust_p = 0.0;   ///< P(thread's ROB pretends full) per window
  double lsq_exhaust_p = 0.0;   ///< P(thread's LSQ pretends full) per window
  double latency_p = 0.0;       ///< P(an issuing instruction gets extra latency)
  std::uint32_t latency_max = 0;  ///< extra latency drawn from [1, latency_max]
  // Sabotage faults (self-tests only; the machine is NOT expected to
  // survive these).
  Cycle commit_block_from = kCycleNever;  ///< commit stalls forever from here
  double drop_dispatch_p = 0.0;           ///< P(instruction silently dropped)

  [[nodiscard]] bool applies_to(std::uint64_t run_stream_seed) const noexcept {
    return target_stream == 0 || target_stream == run_stream_seed;
  }
  [[nodiscard]] bool sabotage() const noexcept {
    return commit_block_from != kCycleNever || drop_dispatch_p > 0.0;
  }
  /// One-line human-readable summary ("ndi=0.31 iq=0.05 ... window=96").
  [[nodiscard]] std::string describe() const;

  /// Deterministically derives the `index`-th randomized resilience plan
  /// (no sabotage faults) from `base_seed`.  `intensity` in [0, 1] scales
  /// every probability.
  [[nodiscard]] static FaultPlan random(std::uint64_t base_seed, std::uint64_t index,
                                        double intensity);
};

/// Binds a FaultPlan to concrete runs: session() yields the core::FaultHooks
/// to install into a MachineConfig, or nullptr when the plan does not target
/// that run's RNG stream.  The injector must outlive its sessions, and a
/// session must outlive the pipeline it is installed into.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  [[nodiscard]] std::unique_ptr<core::FaultHooks> session(
      std::uint64_t run_stream_seed) const;

 private:
  FaultPlan plan_;
};

}  // namespace msim::robust
