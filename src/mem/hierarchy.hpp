// Two-level memory hierarchy (L1I + L1D over a unified L2 over DRAM),
// configured per Table 1 of the paper.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "mem/cache.hpp"
#include "obs/registry.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::mem {

struct HierarchyConfig {
  // MSHR counts are generous by default: the paper's M-Sim substrate
  // (SimpleScalar-derived) does not bound outstanding misses, and the
  // out-of-order dispatch mechanism's benefit on memory-bound workloads
  // comes precisely from the extra memory-level parallelism a deeper
  // window exposes.  The caps remain configurable for ablations.
  CacheConfig l1i{.name = "L1I", .size_bytes = 64 * 1024, .assoc = 2,
                  .line_bytes = 128, .hit_extra = 0, .mshr_count = 16};
  CacheConfig l1d{.name = "L1D", .size_bytes = 32 * 1024, .assoc = 4,
                  .line_bytes = 256, .hit_extra = 0, .mshr_count = 64};
  CacheConfig l2{.name = "L2", .size_bytes = 2 * 1024 * 1024, .assoc = 8,
                 .line_bytes = 512, .hit_extra = 10, .mshr_count = 128};
  /// Main-memory access latency in cycles (Table 1: 150).
  std::uint32_t memory_latency = 150;
};

struct HierarchyStats {
  CacheStats l1i;
  CacheStats l1d;
  CacheStats l2;
  std::uint64_t memory_accesses = 0;
};

/// Chains the cache levels and returns, for each access, the extra latency
/// beyond the pipeline's base operation latency.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config = {});

  /// Data access (load or store) at `now`; returns extra cycles until the
  /// value is available (0 on an L1D hit).  The L1 hit case stays inline;
  /// misses and in-flight-fill bookkeeping take the out-of-line path.
  std::uint32_t access_data(Addr addr, bool is_store, Cycle now) {
    const std::int32_t fast = l1d_.try_hit(addr, is_store, now);
    if (fast >= 0) return static_cast<std::uint32_t>(fast);
    return access_through(l1d_, addr, is_store, now);
  }

  /// Instruction fetch of the line containing `pc` at `now`; returns extra
  /// cycles until fetch can proceed (0 on an L1I hit).
  std::uint32_t access_inst(Addr pc, Cycle now) {
    const std::int32_t fast = l1i_.try_hit(pc, /*is_store=*/false, now);
    if (fast >= 0) return static_cast<std::uint32_t>(fast);
    return access_through(l1i_, pc, /*is_store=*/false, now);
  }

  [[nodiscard]] HierarchyStats stats() const;
  [[nodiscard]] const HierarchyConfig& config() const noexcept { return config_; }

  /// Registers per-level metrics under `prefix` (e.g. "mem.").  The
  /// hierarchy must outlive the registry's snapshots.
  void register_stats(obs::StatRegistry& registry, const std::string& prefix) const;

  /// Zeroes counters; cache contents (tags) are preserved.
  void reset_stats() noexcept {
    l1i_.reset_stats();
    l1d_.reset_stats();
    l2_.reset_stats();
    memory_accesses_ = 0;
  }

  [[nodiscard]] Cache& l1d() noexcept { return l1d_; }
  [[nodiscard]] Cache& l1i() noexcept { return l1i_; }
  [[nodiscard]] Cache& l2() noexcept { return l2_; }
  [[nodiscard]] const Cache& l1d() const noexcept { return l1d_; }
  [[nodiscard]] const Cache& l1i() const noexcept { return l1i_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }

  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  std::uint32_t access_through(Cache& l1, Addr addr, bool is_store, Cycle now);

  HierarchyConfig config_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  std::uint64_t memory_accesses_ = 0;
};

}  // namespace msim::mem
