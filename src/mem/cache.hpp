// Set-associative cache timing model with LRU replacement, write-back /
// write-allocate policy, and MSHR-style miss coalescing.
//
// This is a *timing* model: no data is stored, only tags and dirty bits.
// An access returns the number of cycles beyond the pipeline's built-in
// access latency before the data is available.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace msim::persist {
class Archive;
}

namespace msim::mem {

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t assoc = 4;
  std::uint32_t line_bytes = 64;
  /// Additional cycles charged on a hit beyond the pipeline's base latency
  /// (0 for L1s whose hit time is folded into the load latency; 10 for the
  /// paper's L2).
  std::uint32_t hit_extra = 0;
  /// Maximum outstanding misses (MSHRs); further misses queue behind the
  /// earliest completing one.
  std::uint32_t mshr_count = 8;

  [[nodiscard]] std::uint32_t set_count() const {
    return static_cast<std::uint32_t>(size_bytes / (static_cast<std::uint64_t>(assoc) * line_bytes));
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced_misses = 0;  ///< merged into an in-flight miss
  std::uint64_t mshr_stall_cycles = 0; ///< extra latency waiting for an MSHR
  std::uint64_t dirty_evictions = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
};

/// One level of cache.  `access` updates tag state and returns the extra
/// latency of this level; the caller (MemoryHierarchy) chains levels.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Result of a lookup at this level.
  struct AccessResult {
    bool hit = false;
    /// Cycles beyond the base pipeline latency until this level supplies
    /// the line, *excluding* the next level's latency on a miss (the
    /// hierarchy adds that and then calls `fill`).
    std::uint32_t extra_latency = 0;
    /// For misses: when the MSHR slot frees up and the next-level access
    /// can begin (>= now when MSHRs are saturated).
    Cycle miss_start = 0;
  };

  /// Looks up `addr` at time `now`.  On a hit the line's LRU state is
  /// refreshed; on a miss the caller must later call `fill`.
  AccessResult access(Addr addr, bool is_store, Cycle now);

  /// Inline fast path for the overwhelmingly common case: a hit while no
  /// miss is in flight at this level.  Returns the extra latency, or -1
  /// when the caller must take the out-of-line access() path (a miss, or
  /// possible coalescing with an outstanding fill).  Equivalent to
  /// access() whenever it returns >= 0; accesses that fall through are
  /// *not* counted here (access() counts them).
  [[nodiscard]] std::int32_t try_hit(Addr addr, bool is_store,
                                     Cycle now) noexcept {
    if (!outstanding_.empty()) return -1;
    const Addr laddr = line_addr(addr);
    const std::uint32_t set = set_index(laddr);
    Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == laddr) {
        ++stats_.accesses;
        line.last_used = now;
        line.dirty = line.dirty || is_store;
        return static_cast<std::int32_t>(config_.hit_extra);
      }
    }
    return -1;
  }

  /// Installs the line for a miss that completes at `fill_time` and
  /// registers it in the outstanding-miss table (so later accesses to the
  /// same line coalesce instead of re-missing).
  void fill(Addr addr, bool is_store, Cycle now, Cycle fill_time);

  /// True when the line is present (test/introspection helper).
  [[nodiscard]] bool probe(Addr addr) const noexcept;

  /// Line addresses (addr / line_bytes) of every valid line, sorted
  /// ascending.  Content comparison helper for the functional-warm-up
  /// equivalence tests: two caches that saw the same miss/eviction sequence
  /// have equal resident sets even when their LRU timestamps differ.
  [[nodiscard]] std::vector<Addr> resident_lines() const;

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Checkpoint support: tag/LRU/dirty state, outstanding-miss table, and
  /// statistics all round-trip bit-identically.
  void save_state(persist::Archive& ar) const;
  void load_state(persist::Archive& ar);

 private:
  void state_io(persist::Archive& ar);

  struct Line {
    Addr tag = 0;
    Cycle last_used = 0;
    bool valid = false;
    bool dirty = false;
  };

  // line_bytes and set_count are power-of-two in every supported config
  // (checked in the constructor), so the per-access address math is a
  // shift + mask -- a hardware divide here costs ~10% of whole-run time.
  [[nodiscard]] Addr line_addr(Addr addr) const noexcept {
    return addr >> line_shift_;
  }
  [[nodiscard]] std::uint32_t set_index(Addr laddr) const noexcept {
    return static_cast<std::uint32_t>(laddr & set_mask_);
  }

  void prune_outstanding(Cycle now);

  CacheConfig config_;
  std::uint32_t set_count_;
  std::uint32_t line_shift_ = 0;
  Addr set_mask_ = 0;
  std::vector<Line> lines_;  ///< set-major: lines_[set * assoc + way]
  /// (line address, fill completion time) pairs, for coalescing & MSHR
  /// occupancy.  At most ~mshr_count entries live at once, so a flat array
  /// with linear search beats a tree.
  std::vector<std::pair<Addr, Cycle>> outstanding_;
  /// Earliest fill completion among outstanding_ (kCycleNever when empty).
  /// Lets prune_outstanding skip its scan while nothing has completed --
  /// the common case when tens of misses are in flight -- and resolves
  /// MSHR saturation without a scan.  Derived state: recomputed on load.
  Cycle min_fill_ = kCycleNever;
  [[nodiscard]] const std::pair<Addr, Cycle>* find_outstanding(Addr laddr) const noexcept {
    for (const auto& miss : outstanding_) {
      if (miss.first == laddr) return &miss;
    }
    return nullptr;
  }
  CacheStats stats_;
};

}  // namespace msim::mem
