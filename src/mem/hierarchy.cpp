#include "mem/hierarchy.hpp"

#include "common/archive.hpp"

namespace msim::mem {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2) {}

std::uint32_t MemoryHierarchy::access_through(Cache& l1, Addr addr, bool is_store,
                                              Cycle now) {
  const Cache::AccessResult r1 = l1.access(addr, is_store, now);
  if (r1.hit) return r1.extra_latency;

  // L1 miss: the L2 access begins once an L1 MSHR is available.
  const Cycle l2_start = r1.miss_start;
  const Cache::AccessResult r2 = l2_.access(addr, is_store, l2_start);
  Cycle fill_time;
  if (r2.hit) {
    fill_time = l2_start + r2.extra_latency;
  } else {
    ++memory_accesses_;
    fill_time = r2.miss_start + config_.l2.hit_extra + config_.memory_latency;
    l2_.fill(addr, is_store, l2_start, fill_time);
  }
  l1.fill(addr, is_store, now, fill_time);
  return static_cast<std::uint32_t>(fill_time - now);
}

HierarchyStats MemoryHierarchy::stats() const {
  return {.l1i = l1i_.stats(),
          .l1d = l1d_.stats(),
          .l2 = l2_.stats(),
          .memory_accesses = memory_accesses_};
}

void MemoryHierarchy::register_stats(obs::StatRegistry& registry,
                                     const std::string& prefix) const {
  const auto level = [&registry, &prefix](const Cache& cache, std::string_view name) {
    const CacheStats* s = &cache.stats();
    const std::string p = prefix + std::string(name) + ".";
    registry.counter(p + "accesses", [s] { return s->accesses; });
    registry.counter(p + "misses", [s] { return s->misses; });
    registry.ratio(p + "miss_rate", [s] { return s->misses; },
                   [s] { return s->accesses; });
    registry.counter(p + "coalesced_misses", [s] { return s->coalesced_misses; });
    registry.counter(p + "mshr_stall_cycles", [s] { return s->mshr_stall_cycles; });
    registry.counter(p + "dirty_evictions", [s] { return s->dirty_evictions; });
  };
  level(l1i_, "l1i");
  level(l1d_, "l1d");
  level(l2_, "l2");
  const std::uint64_t* mem_accesses = &memory_accesses_;
  registry.counter(prefix + "memory_accesses",
                   [mem_accesses] { return *mem_accesses; });
}

void MemoryHierarchy::state_io(persist::Archive& ar) {
  ar.section("mem-hierarchy");
  for (Cache* c : {&l1i_, &l1d_, &l2_}) {
    if (ar.saving()) c->save_state(ar); else c->load_state(ar);
  }
  ar.io(memory_accesses_);
}

MSIM_PERSIST_VIA_STATE_IO(MemoryHierarchy)

}  // namespace msim::mem
