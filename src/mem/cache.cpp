#include "mem/cache.hpp"

#include <algorithm>
#include <bit>

#include "common/archive.hpp"
#include "common/check.hpp"

namespace msim::mem {

Cache::Cache(const CacheConfig& config) : config_(config), set_count_(config.set_count()) {
  MSIM_CHECK(config_.assoc > 0 && config_.line_bytes > 0);
  MSIM_CHECK(config_.size_bytes % (static_cast<std::uint64_t>(config_.assoc) * config_.line_bytes) == 0);
  MSIM_CHECK(set_count_ > 0);
  MSIM_CHECK(config_.mshr_count > 0);
  MSIM_CHECK((config_.line_bytes & (config_.line_bytes - 1)) == 0);
  MSIM_CHECK((set_count_ & (set_count_ - 1)) == 0);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config_.line_bytes));
  set_mask_ = set_count_ - 1;
  lines_.resize(static_cast<std::size_t>(set_count_) * config_.assoc);
}

void Cache::prune_outstanding(Cycle now) {
  if (min_fill_ > now) return;  // nothing has completed yet
  std::erase_if(outstanding_, [now](const auto& miss) { return miss.second <= now; });
  min_fill_ = kCycleNever;
  for (const auto& miss : outstanding_) min_fill_ = std::min(min_fill_, miss.second);
}

Cache::AccessResult Cache::access(Addr addr, bool is_store, Cycle now) {
  ++stats_.accesses;
  const Addr laddr = line_addr(addr);
  const std::uint32_t set = set_index(laddr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == laddr) {
      line.last_used = now;
      line.dirty = line.dirty || is_store;
      // The tag may belong to a line whose fill is still in flight; such
      // accesses wait for the fill to complete (miss coalescing).
      std::uint32_t wait = 0;
      if (!outstanding_.empty()) {
        if (const auto* miss = find_outstanding(laddr);
            miss != nullptr && miss->second > now) {
          wait = static_cast<std::uint32_t>(miss->second - now);
          ++stats_.coalesced_misses;
        }
      }
      return {.hit = true, .extra_latency = config_.hit_extra + wait, .miss_start = now};
    }
  }
  ++stats_.misses;
  prune_outstanding(now);

  // Coalesce with an in-flight miss to the same line.
  if (const auto* miss = find_outstanding(laddr); miss != nullptr) {
    ++stats_.coalesced_misses;
    const auto wait = static_cast<std::uint32_t>(miss->second - now);
    return {.hit = true, .extra_latency = config_.hit_extra + wait, .miss_start = now};
  }

  // MSHR saturation delays the start of the next-level access until the
  // earliest outstanding miss completes.
  Cycle miss_start = now;
  if (outstanding_.size() >= config_.mshr_count) {
    // All entries survived the prune above, so min_fill_ is exact.
    miss_start = min_fill_;
    stats_.mshr_stall_cycles += miss_start - now;
  }
  return {.hit = false, .extra_latency = config_.hit_extra, .miss_start = miss_start};
}

void Cache::fill(Addr addr, bool is_store, Cycle now, Cycle fill_time) {
  const Addr laddr = line_addr(addr);
  const std::uint32_t set = set_index(laddr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];

  // Victim selection: first invalid way, else true-LRU by last_used.
  Line* victim = base;
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.last_used < victim->last_used) victim = &line;
  }
  if (victim->valid && victim->dirty) ++stats_.dirty_evictions;

  victim->valid = true;
  victim->tag = laddr;
  victim->last_used = fill_time;
  victim->dirty = is_store;

  prune_outstanding(now);
  // Mirrors map::emplace semantics: never create a duplicate entry for a
  // line (cannot happen today -- a line with an in-flight fill coalesces
  // at access() and is not re-filled -- but stay defensive).
  if (fill_time > now && find_outstanding(laddr) == nullptr) {
    outstanding_.emplace_back(laddr, fill_time);
    min_fill_ = std::min(min_fill_, fill_time);
  }
}

bool Cache::probe(Addr addr) const noexcept {
  const Addr laddr = line_addr(addr);
  const std::uint32_t set = set_index(laddr);
  const Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    if (base[w].valid && base[w].tag == laddr) return true;
  }
  return false;
}

std::vector<Addr> Cache::resident_lines() const {
  std::vector<Addr> out;
  out.reserve(lines_.size());
  for (const Line& line : lines_) {
    if (line.valid) out.push_back(line.tag);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Cache::state_io(persist::Archive& ar) {
  ar.section("cache");
  ar.io_sequence(lines_, [](persist::Archive& a, Line& l) {
    a.io(l.tag);
    a.io(l.last_used);
    a.io(l.valid);
    a.io(l.dirty);
  });
  ar.io_sequence(outstanding_, [](persist::Archive& a, std::pair<Addr, Cycle>& m) {
    a.io(m.first);
    a.io(m.second);
  });
  // min_fill_ is derived from outstanding_, not part of the format.
  min_fill_ = kCycleNever;
  for (const auto& miss : outstanding_) min_fill_ = std::min(min_fill_, miss.second);
  ar.io(stats_.accesses);
  ar.io(stats_.misses);
  ar.io(stats_.coalesced_misses);
  ar.io(stats_.mshr_stall_cycles);
  ar.io(stats_.dirty_evictions);
}

MSIM_PERSIST_VIA_STATE_IO(Cache)

}  // namespace msim::mem
